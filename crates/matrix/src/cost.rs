//! The calibrated matrix-multiplication cost model `M̂(u, v, w, co)`.
//!
//! Algorithm 3 (§5) needs to predict, for candidate degree thresholds, how
//! long the heavy-part multiplication will take on *this* machine with *this*
//! kernel. The paper pre-measures square products `M̂(p, p, p, co)` for
//! `p ∈ {1000, 2000, …, 20000}` and `co ∈ [5]`, then extrapolates to
//! arbitrary rectangular shapes. We do the same, scaled to our kernel: we
//! measure a handful of square sizes per core count (or accept injected
//! measurements), fit effective FLOP throughput per sample, and interpolate
//! by total work `u·v·w`.
//!
//! The model also exposes the §5 constants of Table 1 — sequential-access
//! time `Ts`, allocation time `Tm`, random insert time `TI` — which the
//! light-part cost formula (Algorithm 3 lines 10–11) multiplies against the
//! threshold-index sums.

use crate::dense::DenseMatrix;
use crate::gemm::matmul_parallel;
use crate::kernel::active_kernel;
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::time::Instant;

/// The analytic reference throughput (GFLOP/s, single core) that
/// [`CostModel::analytic_default`] assumes. [`CostModel::speed_vs_reference`]
/// reports measured speed relative to this, which is what
/// `JoinConfig::install_measured_model` uses to re-derive the
/// combinatorial/matrix crossover.
pub const REFERENCE_GFLOPS: f64 = 20.0;

/// Runs `f` once as warmup, then three times, and returns the median
/// wall-clock seconds. Mirrors `bench::timed_median(1, 3, …)` — single-shot
/// timings on a shared machine routinely mispredict by 2–3× from cold
/// caches and frequency ramps.
fn median_of_3(mut f: impl FnMut()) -> f64 {
    f();
    let mut runs = [0.0f64; 3];
    for r in &mut runs {
        let t0 = Instant::now();
        f();
        *r = t0.elapsed().as_secs_f64();
    }
    runs.sort_by(f64::total_cmp);
    runs[1]
}

/// One calibration sample: a `p × p × p` product on `cores` threads took
/// `seconds`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Square dimension measured.
    pub p: usize,
    /// Worker threads used.
    pub cores: usize,
    /// Wall-clock seconds for the product.
    pub seconds: f64,
}

/// System constants of Table 1 (per-element costs, in seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConstants {
    /// `Ts`: average sequential access cost per element.
    pub t_seq: f64,
    /// `Tm`: average cost to allocate 32 bytes.
    pub t_alloc: f64,
    /// `TI`: average random access + insert cost per element.
    pub t_insert: f64,
}

impl Default for SystemConstants {
    fn default() -> Self {
        // Modern-x86 defaults; `measure()` refines them. The insert cost
        // assumes the dedup scratch buffer mostly stays in cache (§6's
        // design goal) — overpricing it biases Algorithm 3 toward matrices
        // even where expansion wins.
        Self {
            t_seq: 1.0e-9,
            t_alloc: 4.0e-9,
            t_insert: 2.5e-9,
        }
    }
}

impl SystemConstants {
    /// Micro-benchmarks the three constants on the current machine.
    ///
    /// Each micro-bench gets a warmup pass and is then timed three times,
    /// keeping the median — the same discipline as `bench::timed_median`.
    /// The first run pays page faults and cold caches; a single-shot
    /// measurement here used to inflate `Ts` enough to visibly skew the
    /// Algorithm 3 light-part cost.
    pub fn measure() -> Self {
        const N: usize = 1 << 20;
        // Sequential scan.
        let v: Vec<u32> = (0..N as u32).collect();
        let t_seq = median_of_3(|| {
            let mut acc = 0u64;
            for &x in &v {
                acc = acc.wrapping_add(x as u64);
            }
            std::hint::black_box(acc);
        }) / N as f64;
        // Allocation (vec push growth amortized).
        let t_alloc = median_of_3(|| {
            let mut w: Vec<u64> = Vec::new();
            for i in 0..(N / 4) as u64 {
                w.push(i);
            }
            std::hint::black_box(&w);
        }) / (N / 4) as f64
            * 4.0;
        // Random access + increment.
        let mut d = vec![0u32; N];
        let t_insert = median_of_3(|| {
            let mut idx = 123456789usize;
            for _ in 0..N / 4 {
                idx = idx.wrapping_mul(6364136223846793005).wrapping_add(1);
                d[idx % N] += 1;
            }
            std::hint::black_box(&d);
        }) / (N / 4) as f64;
        Self {
            t_seq: t_seq.max(1e-11),
            t_alloc: t_alloc.max(1e-11),
            t_insert: t_insert.max(1e-11),
        }
    }
}

/// Calibrated estimator for multiplication and construction cost.
#[derive(Debug, Clone)]
pub struct CostModel {
    samples: Vec<Sample>,
    /// System constants for non-GEMM terms.
    pub constants: SystemConstants,
    /// Name of the GEMM kernel the samples were measured under
    /// (`"scalar"`, `"avx2"`, `"avx512"`, …; `"analytic"` for the
    /// synthetic default). A model calibrated under one kernel mispredicts
    /// another by the kernels' speed ratio, so consumers should re-calibrate
    /// when this disagrees with [`active_kernel`].
    kernel: String,
    /// Per-core speedup curve `(cores, speedup over 1 core)` derived from
    /// the samples at construction, sorted by core count; empty when the
    /// samples cover fewer than two core counts (then [`CostModel::speedup`]
    /// falls back to the analytic 80%-efficiency guess).
    curve: Vec<(usize, f64)>,
}

/// Derives the measured per-core speedup curve from calibration samples:
/// for each sampled core count, effective throughput at the *largest*
/// measured `p` (small products are dominated by fixed overheads)
/// relative to the single-core throughput. Needs a 1-core baseline plus
/// at least one multi-core point; anything less yields an empty curve.
fn efficiency_curve(samples: &[Sample]) -> Vec<(usize, f64)> {
    let mut cores_list: Vec<usize> = samples.iter().map(|s| s.cores).collect();
    cores_list.sort_unstable();
    cores_list.dedup();
    if cores_list.first() != Some(&1) || cores_list.len() < 2 {
        return Vec::new();
    }
    let throughput = |c: usize| -> f64 {
        let best = samples
            .iter()
            .filter(|s| s.cores == c)
            .max_by_key(|s| s.p)
            .expect("core count came from the samples");
        (best.p as f64).powi(3) / best.seconds.max(1e-12)
    };
    let base = throughput(1);
    cores_list
        .into_iter()
        .map(|c| {
            // Pin the baseline at exactly 1.0 so single-core estimates
            // are the raw samples; floor multi-core points so a noisy
            // measurement can never zero out an estimate.
            let s = if c == 1 {
                1.0
            } else {
                (throughput(c) / base).max(0.05)
            };
            (c, s)
        })
        .collect()
}

impl CostModel {
    /// The one true constructor: derives the parallel-speedup curve from
    /// the samples so every model — measured, injected or loaded — prices
    /// core counts the same way.
    fn finish(samples: Vec<Sample>, constants: SystemConstants, kernel: String) -> Self {
        assert!(!samples.is_empty(), "cost model needs at least one sample");
        let curve = efficiency_curve(&samples);
        Self {
            samples,
            constants,
            kernel,
            curve,
        }
    }

    /// A model from explicit samples (useful for tests and for loading cached
    /// calibration data).
    pub fn from_samples(samples: Vec<Sample>, constants: SystemConstants) -> Self {
        Self::finish(samples, constants, "injected".to_string())
    }

    /// A deterministic default model assuming an effective single-core
    /// throughput of `20 GFLOP/s` (2 ops per multiply-add; the blocked
    /// kernel of this crate measures ~35 GFLOP/s on AVX-512 hardware, so
    /// this is a conservative portable default) with 80% parallel
    /// efficiency — adequate for unit tests that must not spend time
    /// calibrating. Experiment binaries should prefer [`CostModel::calibrate`].
    pub fn analytic_default() -> Self {
        let mut samples = Vec::new();
        for cores in 1..=8usize {
            let eff = cores as f64 * 0.8 + 0.2;
            for p in [512usize, 1024, 2048] {
                let flops = 2.0 * (p as f64).powi(3);
                samples.push(Sample {
                    p,
                    cores,
                    seconds: flops / (20.0e9 * eff),
                });
            }
        }
        Self::finish(samples, SystemConstants::default(), "analytic".to_string())
    }

    /// Calibrates by actually running the dispatched kernel at the cross
    /// product of the given square sizes and core counts (the paper's
    /// `p ∈ {1000, …, 20000}` table, scaled). Multi-core points run on
    /// the tiled parallel scheduler, so the fitted speedup curve measures
    /// the machine the planner will actually schedule on.
    pub fn calibrate(sizes: &[usize], core_counts: &[usize]) -> Self {
        let points: Vec<(usize, usize)> = core_counts
            .iter()
            .flat_map(|&cores| sizes.iter().map(move |&p| (p, cores)))
            .collect();
        Self::calibrate_points(&points)
    }

    /// Calibrates an explicit list of `(p, cores)` points. Each point gets
    /// a warmup pass and the median of three timed runs, and the resulting
    /// model is tagged with [`active_kernel`] so stale calibrations are
    /// detectable.
    pub fn calibrate_points(points: &[(usize, usize)]) -> Self {
        let mut samples = Vec::new();
        for &(p, cores) in points {
            let a = DenseMatrix::from_fn(p, p, |i, j| ((i * 31 + j * 17) % 7 == 0) as u8 as f32);
            let b = DenseMatrix::from_fn(p, p, |i, j| ((i * 13 + j * 29) % 5 == 0) as u8 as f32);
            let seconds = median_of_3(|| {
                let c = matmul_parallel(&a, &b, cores);
                std::hint::black_box(&c);
            })
            .max(1e-9);
            samples.push(Sample { p, cores, seconds });
        }
        Self::finish(
            samples,
            SystemConstants::measure(),
            active_kernel().name().to_string(),
        )
    }

    /// A fast calibration pass suitable for service startup: square sizes
    /// {128, 256, 512} on one core, then a cores sweep over
    /// `{2, 4, workers} ∩ (1, workers]` at `p = 512` to fit the measured
    /// parallel-speedup curve. Takes well under a second, which is enough
    /// to place the dispatched kernel's real throughput *and* its real
    /// multi-core scaling, and re-derive the strategy crossover.
    pub fn calibrate_quick(workers: usize) -> Self {
        let budget = workers.max(1);
        let mut points = vec![(128usize, 1usize), (256, 1), (512, 1)];
        let mut cores = vec![2usize, 4, budget];
        cores.retain(|&c| c > 1 && c <= budget);
        cores.sort_unstable();
        cores.dedup();
        points.extend(cores.into_iter().map(|c| (512, c)));
        Self::calibrate_points(&points)
    }

    /// Kernel name the samples were measured under (`"analytic"` or
    /// `"injected"` for synthetic models).
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// Parallel speedup over one core at `cores` workers.
    ///
    /// When the samples cover ≥ 2 core counts this interpolates the
    /// *measured* efficiency curve (piecewise-linear between sampled core
    /// counts; extrapolation past the largest sampled count continues the
    /// last segment's slope, clamped to [0, 1] speedup per core). Only a
    /// model with no multi-core samples falls back to the old analytic
    /// `0.8·c + 0.2` guess — so once calibration sweeps the cores axis,
    /// the analytic formula is out of the loop entirely.
    pub fn speedup(&self, cores: usize) -> f64 {
        let c = cores.max(1) as f64;
        if self.curve.len() < 2 {
            return 0.8 * c + 0.2;
        }
        if c <= self.curve[0].0 as f64 {
            return self.curve[0].1;
        }
        for pair in self.curve.windows(2) {
            let ((c0, s0), (c1, s1)) = (pair[0], pair[1]);
            if c <= c1 as f64 {
                let t = (c - c0 as f64) / ((c1 - c0) as f64);
                return s0 + t * (s1 - s0);
            }
        }
        let ((c0, s0), (c1, s1)) = (
            self.curve[self.curve.len() - 2],
            self.curve[self.curve.len() - 1],
        );
        let slope = ((s1 - s0) / ((c1 - c0) as f64)).clamp(0.0, 1.0);
        s1 + slope * (c - c1 as f64)
    }

    /// The measured per-core speedup curve `(cores, speedup)`; empty when
    /// the samples cover fewer than two core counts (see
    /// [`CostModel::speedup`] for the fallback).
    pub fn parallel_curve(&self) -> &[(usize, f64)] {
        &self.curve
    }

    /// Highest core count among the samples — the parallelism this
    /// calibration actually measured. Consumers use it to detect a stale
    /// single-core manifest when a larger thread budget is configured.
    pub fn max_cores(&self) -> usize {
        self.samples.iter().map(|s| s.cores).max().unwrap_or(1)
    }

    /// Measured effective single-core throughput divided by the analytic
    /// reference ([`REFERENCE_GFLOPS`]). `> 1.0` means this machine's
    /// dispatched kernel is faster than the default model assumes, so
    /// matrix plans become profitable earlier (the crossover shifts toward
    /// smaller instances).
    pub fn speed_vs_reference(&self) -> f64 {
        let single: Vec<&Sample> = self.samples.iter().filter(|s| s.cores == 1).collect();
        let pool: Vec<&Sample> = if single.is_empty() {
            self.samples.iter().collect()
        } else {
            single
        };
        // Use the largest sample per the pool — small products are
        // dominated by fixed overheads, not kernel throughput.
        let best = pool.iter().max_by_key(|s| s.p).expect("non-empty samples");
        let flops = 2.0 * (best.p as f64).powi(3);
        let gflops = flops / best.seconds / 1.0e9 / self.speedup(best.cores);
        gflops / REFERENCE_GFLOPS
    }

    /// Persists the model as a small text manifest (one line per sample)
    /// so a calibration can be reused across service restarts. The
    /// `cores` line records the swept core-count axis explicitly;
    /// [`CostModel::load`] accepts manifests without it (pre-sweep
    /// format), deriving everything from the samples.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut out = Vec::new();
        writeln!(out, "mmjoin-cost-model v1")?;
        writeln!(out, "kernel {}", self.kernel)?;
        let mut cores: Vec<usize> = self.samples.iter().map(|s| s.cores).collect();
        cores.sort_unstable();
        cores.dedup();
        let cores_line = cores
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        writeln!(out, "cores {cores_line}")?;
        writeln!(
            out,
            "constants {:e} {:e} {:e}",
            self.constants.t_seq, self.constants.t_alloc, self.constants.t_insert
        )?;
        for s in &self.samples {
            writeln!(out, "sample {} {} {:e}", s.p, s.cores, s.seconds)?;
        }
        std::fs::write(path, out)
    }

    /// Loads a manifest written by [`CostModel::save`]. Returns an error on
    /// unknown versions or malformed lines; callers should fall back to
    /// re-calibrating.
    pub fn load(path: &Path) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let file = std::fs::File::open(path)?;
        let mut lines = io::BufReader::new(file).lines();
        match lines.next().transpose()? {
            Some(ref h) if h.trim() == "mmjoin-cost-model v1" => {}
            _ => return Err(bad("not a v1 cost-model manifest")),
        }
        let mut kernel = "injected".to_string();
        let mut constants = SystemConstants::default();
        let mut samples = Vec::new();
        for line in lines {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("kernel") => {
                    kernel = parts.next().ok_or_else(|| bad("kernel line"))?.to_string();
                }
                Some("cores") => {
                    // The swept core-count axis. Informational — the
                    // samples already carry per-point core counts — but
                    // malformed tokens still fail loudly rather than
                    // silently feeding a bogus manifest to the planner.
                    for tok in parts.by_ref() {
                        tok.parse::<usize>().map_err(|_| bad("cores line"))?;
                    }
                }
                Some("constants") => {
                    let mut next = || -> io::Result<f64> {
                        parts
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| bad("constants line"))
                    };
                    constants = SystemConstants {
                        t_seq: next()?,
                        t_alloc: next()?,
                        t_insert: next()?,
                    };
                }
                Some("sample") => {
                    let p = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("sample line"))?;
                    let cores = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("sample line"))?;
                    let seconds = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("sample line"))?;
                    samples.push(Sample { p, cores, seconds });
                }
                _ => return Err(bad("unknown manifest line")),
            }
        }
        if samples.is_empty() {
            return Err(bad("manifest has no samples"));
        }
        Ok(Self::finish(samples, constants, kernel))
    }

    /// `M̂(u, v, w, co)` — predicted seconds to multiply `u×v` by `v×w` on
    /// `co` cores: pick the sample nearest in per-core work and scale by the
    /// work ratio (our kernel is cubic with no Strassen in the calibrated
    /// path, so the scaling is linear in `u·v·w`, matching the paper's
    /// observation that Eigen's runtime is predictable).
    pub fn estimate(&self, u: usize, v: usize, w: usize, cores: usize) -> f64 {
        if u == 0 || v == 0 || w == 0 {
            return 0.0;
        }
        let work = u as f64 * v as f64 * w as f64;
        // Nearest sample by (core distance, work distance).
        let best = self
            .samples
            .iter()
            .min_by(|s1, s2| {
                let key = |s: &Sample| {
                    let core_gap = (s.cores as f64 - cores as f64).abs();
                    let w_s = (s.p as f64).powi(3);
                    let work_gap = (w_s.ln() - work.ln()).abs();
                    core_gap * 1000.0 + work_gap
                };
                key(s1).total_cmp(&key(s2))
            })
            .expect("non-empty samples");
        let sample_work = (best.p as f64).powi(3);
        let scaled = best.seconds * work / sample_work;
        // Correct a core-count mismatch with the measured speedup curve
        // (analytic only for models with no multi-core samples).
        scaled * self.speedup(best.cores) / self.speedup(cores)
    }

    /// Predicted seconds for a GEMM that will execute `madds` effective
    /// multiply-adds on `cores` workers. The blocked kernel skips zero
    /// entries of the left operand, so for 0/1 adjacency matrices the
    /// effective work is `nnz(A) · w`, often far below `u·v·w` — pricing
    /// the dense product would bias Algorithm 3 away from profitable plans.
    pub fn estimate_effective(&self, madds: f64, cores: usize) -> f64 {
        if madds <= 0.0 {
            return 0.0;
        }
        let best = self
            .samples
            .iter()
            .min_by(|s1, s2| {
                let key = |s: &Sample| {
                    let core_gap = (s.cores as f64 - cores as f64).abs();
                    let work_gap = ((s.p as f64).powi(3).ln() - madds.ln()).abs();
                    core_gap * 1000.0 + work_gap
                };
                key(s1).total_cmp(&key(s2))
            })
            .expect("non-empty samples");
        let scaled = best.seconds * madds / (best.p as f64).powi(3);
        scaled * self.speedup(best.cores) / self.speedup(cores)
    }

    /// Predicted seconds to *construct* the two heavy matrices of Algorithm 1
    /// (allocation + one pass over the heavy pairs; `C` in Eq. (1)).
    pub fn construction_cost(&self, u: usize, v: usize, w: usize) -> f64 {
        let cells = (u as f64 * v as f64) + (v as f64 * w as f64);
        cells * (self.constants.t_alloc / 8.0 + self.constants.t_seq)
    }

    /// All samples (for reporting / Figure 3 reproduction).
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_model() -> CostModel {
        CostModel::from_samples(
            vec![
                Sample {
                    p: 100,
                    cores: 1,
                    seconds: 1.0,
                },
                Sample {
                    p: 200,
                    cores: 1,
                    seconds: 8.0,
                },
                Sample {
                    p: 100,
                    cores: 4,
                    seconds: 0.3,
                },
            ],
            SystemConstants::default(),
        )
    }

    #[test]
    fn estimate_scales_linearly_in_work() {
        let m = flat_model();
        let t1 = m.estimate(100, 100, 100, 1);
        let t2 = m.estimate(200, 100, 100, 1);
        assert!((t2 / t1 - 2.0).abs() < 1e-9, "doubling u doubles time");
    }

    #[test]
    fn estimate_prefers_matching_cores() {
        let m = flat_model();
        let t1 = m.estimate(100, 100, 100, 1);
        let t4 = m.estimate(100, 100, 100, 4);
        assert!(t4 < t1, "4-core estimate should be faster");
    }

    #[test]
    fn estimate_zero_dims() {
        let m = flat_model();
        assert_eq!(m.estimate(0, 10, 10, 1), 0.0);
        assert_eq!(m.estimate(10, 0, 10, 2), 0.0);
    }

    #[test]
    fn rectangular_uses_nearest_work() {
        let m = flat_model();
        // u*v*w == 8e6 == 200^3: should pick the p=200 sample.
        let t = m.estimate(800, 100, 100, 1);
        assert!((t - 8.0).abs() < 1e-9);
    }

    #[test]
    fn construction_cost_positive_and_monotone() {
        let m = flat_model();
        let small = m.construction_cost(10, 10, 10);
        let big = m.construction_cost(100, 100, 100);
        assert!(small > 0.0);
        assert!(big > small);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_rejected() {
        let _ = CostModel::from_samples(vec![], SystemConstants::default());
    }

    #[test]
    fn analytic_default_sane() {
        let m = CostModel::analytic_default();
        let t = m.estimate(1000, 1000, 1000, 1);
        assert!(t > 0.0 && t < 100.0);
        // More cores must not be slower under the analytic model.
        assert!(m.estimate(1000, 1000, 1000, 8) < t);
    }

    #[test]
    fn measured_constants_positive() {
        let c = SystemConstants::measure();
        assert!(c.t_seq > 0.0 && c.t_alloc > 0.0 && c.t_insert > 0.0);
    }

    #[test]
    fn calibrate_tiny_runs() {
        let m = CostModel::calibrate(&[32, 64], &[1]);
        assert_eq!(m.samples().len(), 2);
        assert!(m.estimate(64, 64, 64, 1) > 0.0);
        assert_eq!(m.kernel(), active_kernel().name());
    }

    #[test]
    fn kernel_tags_are_stable() {
        assert_eq!(CostModel::analytic_default().kernel(), "analytic");
        assert_eq!(flat_model().kernel(), "injected");
    }

    #[test]
    fn analytic_speed_ratio_is_unity() {
        // The analytic default samples are generated at exactly
        // REFERENCE_GFLOPS, so the ratio must come back as 1.
        let r = CostModel::analytic_default().speed_vs_reference();
        assert!((r - 1.0).abs() < 1e-9, "got {r}");
    }

    #[test]
    fn manifest_roundtrip() {
        let m = flat_model();
        let path =
            std::env::temp_dir().join(format!("mmjoin-cost-roundtrip-{}.txt", std::process::id()));
        m.save(&path).unwrap();
        let loaded = CostModel::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.samples(), m.samples());
        assert_eq!(loaded.kernel(), m.kernel());
        assert!((loaded.constants.t_seq - m.constants.t_seq).abs() < 1e-15);
        assert!((loaded.constants.t_insert - m.constants.t_insert).abs() < 1e-15);
    }

    /// The per-core scaling must come from the measured samples, not the
    /// analytic `0.8·c + 0.2` guess, whenever the samples cover the
    /// cores axis (the ISSUE-9 acceptance criterion).
    #[test]
    fn measured_speedup_curve_replaces_analytic() {
        let m = flat_model();
        // throughput(1) = 200³/8 s; throughput(4) = 100³/0.3 s →
        // measured speedup(4) = 10/3, nowhere near the analytic 3.4.
        let s4 = m.speedup(4);
        assert!((s4 - 10.0 / 3.0).abs() < 1e-9, "got {s4}");
        // Interpolation between the sampled core counts is linear.
        let s2 = m.speedup(2);
        let want = 1.0 + (10.0 / 3.0 - 1.0) / 3.0;
        assert!((s2 - want).abs() < 1e-9, "got {s2}, want {want}");
        assert_eq!(m.speedup(1), 1.0);
        assert_eq!(m.parallel_curve().len(), 2);
        // And the estimates flow through the measured curve: a 2-core
        // estimate sits strictly between the 1- and 4-core ones.
        let (t1, t2, t4) = (
            m.estimate(100, 100, 100, 1),
            m.estimate(100, 100, 100, 2),
            m.estimate(100, 100, 100, 4),
        );
        assert!(t4 < t2 && t2 < t1, "t1={t1} t2={t2} t4={t4}");
    }

    /// A single-core-only model has no measured curve and falls back to
    /// the analytic guess — the only case where it is still used.
    #[test]
    fn single_core_model_falls_back_to_analytic_speedup() {
        let m = CostModel::from_samples(
            vec![Sample {
                p: 100,
                cores: 1,
                seconds: 1.0,
            }],
            SystemConstants::default(),
        );
        assert!(m.parallel_curve().is_empty());
        assert!((m.speedup(4) - 3.4).abs() < 1e-9);
        assert_eq!(m.max_cores(), 1);
    }

    /// The analytic default's derived curve reproduces its own generating
    /// formula exactly (it *is* piecewise linear), including slope-0.8
    /// extrapolation past the largest sampled core count.
    #[test]
    fn analytic_curve_matches_closed_form() {
        let m = CostModel::analytic_default();
        for c in 1usize..=8 {
            let want = 0.8 * c as f64 + 0.2;
            assert!((m.speedup(c) - want).abs() < 1e-9, "cores={c}");
        }
        assert!((m.speedup(16) - (0.8 * 16.0 + 0.2)).abs() < 1e-9);
        assert_eq!(m.max_cores(), 8);
    }

    #[test]
    fn manifest_records_cores_axis_and_reads_legacy_format() {
        let m = flat_model();
        let path =
            std::env::temp_dir().join(format!("mmjoin-cost-cores-{}.txt", std::process::id()));
        m.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("cores 1 4"), "manifest:\n{text}");
        // Pre-sweep manifests (no `cores` line) still load, deriving the
        // curve from the samples alone.
        std::fs::write(
            &path,
            "mmjoin-cost-model v1\nkernel scalar\nconstants 1e-9 4e-9 2.5e-9\n\
             sample 100 1 1.0\nsample 100 4 0.3\n",
        )
        .unwrap();
        let legacy = CostModel::load(&path).unwrap();
        assert_eq!(legacy.max_cores(), 4);
        assert!(!legacy.parallel_curve().is_empty());
        // A malformed cores line is rejected, like any other bad line.
        std::fs::write(
            &path,
            "mmjoin-cost-model v1\ncores 1 banana\nsample 100 1 1.0\n",
        )
        .unwrap();
        assert!(CostModel::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn manifest_rejects_garbage() {
        let path =
            std::env::temp_dir().join(format!("mmjoin-cost-garbage-{}.txt", std::process::id()));
        std::fs::write(&path, "not a manifest\n").unwrap();
        assert!(CostModel::load(&path).is_err());
        std::fs::write(&path, "mmjoin-cost-model v1\nkernel scalar\n").unwrap();
        let err = CostModel::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
