//! Strassen's algorithm above a cutoff — a "fast matrix multiplication"
//! path (ω ≈ 2.807) for the theoretical side of the paper.
//!
//! The paper's analysis is parameterized by the matrix-multiplication
//! exponent ω; its prototype uses the classical cubic kernel because MKL's
//! constants dominate at practical sizes. We provide Strassen as the
//! promised "fast MM" extension and ablate the cutoff in `bench/ablation`.
//! Products of 0/1 adjacency matrices stay exact: all intermediate values
//! are small integers representable in `f32`.
//!
//! Leaves below the cutoff call [`matmul`], so they run on whatever kernel
//! [`crate::kernel::active_kernel`] dispatched (AVX-512/AVX2 under the
//! `simd` feature). A faster leaf pushes the profitable cutoff upward;
//! re-ablate with `experiments ablation` after changing kernels.

use crate::dense::DenseMatrix;
use crate::gemm::{matmul, matmul_parallel_on};
use mmjoin_executor::Executor;

/// Dimension at or below which we fall back to the blocked cubic kernel.
pub const DEFAULT_CUTOFF: usize = 128;

/// Multiplies `a · b` with Strassen recursion above `cutoff`.
///
/// Works for arbitrary rectangular shapes by padding to the next even size
/// at each level (peeled row/column strips are handled by the base kernel).
///
/// # Panics
/// Panics if inner dimensions disagree.
pub fn strassen(a: &DenseMatrix, b: &DenseMatrix, cutoff: usize) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let cutoff = cutoff.max(2);
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m.min(k).min(n) <= cutoff {
        return matmul(a, b);
    }
    // Pad all dims to even.
    let (m2, k2, n2) = (
        m.next_multiple_of(2),
        k.next_multiple_of(2),
        n.next_multiple_of(2),
    );
    let ap = pad(a, m2, k2);
    let bp = pad(b, k2, n2);
    let cp = strassen_even(&ap, &bp, cutoff);
    crop(&cp, m, n)
}

/// [`strassen`] with the seven top-level subproducts evaluated as
/// parallel tasks on the shared executor pool (each recursing serially
/// below). Seven independent leaves are the natural fork points of the
/// recursion — they need no coordination and dominate the runtime.
pub fn strassen_parallel(
    a: &DenseMatrix,
    b: &DenseMatrix,
    cutoff: usize,
    threads: usize,
) -> DenseMatrix {
    strassen_parallel_on(Executor::global(), a, b, cutoff, threads)
}

/// [`strassen_parallel`] on an explicit executor.
pub fn strassen_parallel_on(
    exec: &Executor,
    a: &DenseMatrix,
    b: &DenseMatrix,
    cutoff: usize,
    threads: usize,
) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let cutoff = cutoff.max(2);
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if threads <= 1 || m.min(k).min(n) <= cutoff {
        return strassen(a, b, cutoff);
    }
    let (m2, k2, n2) = (
        m.next_multiple_of(2),
        k.next_multiple_of(2),
        n.next_multiple_of(2),
    );
    let ap = pad(a, m2, k2);
    let bp = pad(b, k2, n2);
    let (a11, a12, a21, a22) = (
        quadrant(&ap, 0, 0),
        quadrant(&ap, 0, 1),
        quadrant(&ap, 1, 0),
        quadrant(&ap, 1, 1),
    );
    let (b11, b12, b21, b22) = (
        quadrant(&bp, 0, 0),
        quadrant(&bp, 0, 1),
        quadrant(&bp, 1, 0),
        quadrant(&bp, 1, 1),
    );
    // The seven Strassen leaves, as independent pool tasks. With more
    // than seven threads in the budget, the surplus flows into each
    // leaf's own base-case GEMMs through the tiled parallel scheduler
    // (a deterministic split, so the result stays schedule-independent).
    let leaf_threads = (threads / 7).max(1);
    let leaves: [(DenseMatrix, DenseMatrix); 7] = [
        (add(&a11, &a22), add(&b11, &b22)),
        (add(&a21, &a22), b11.clone()),
        (a11.clone(), sub(&b12, &b22)),
        (a22.clone(), sub(&b21, &b11)),
        (add(&a11, &a12), b22.clone()),
        (sub(&a21, &a11), add(&b11, &b12)),
        (sub(&a12, &a22), add(&b21, &b22)),
    ];
    let products = exec.map(threads.min(7), 7, |i| {
        let (l, r) = &leaves[i];
        strassen_even_on(exec, l, r, cutoff, leaf_threads)
    });
    let [m1, m2m, m3, m4, m5, m6, m7]: [DenseMatrix; 7] =
        products.try_into().expect("seven leaf products");

    let c11 = add(&sub(&add(&m1, &m4), &m5), &m7);
    let c12 = add(&m3, &m5);
    let c21 = add(&m2m, &m4);
    let c22 = add(&add(&sub(&m1, &m2m), &m3), &m6);

    let (hm, hn) = (m2 / 2, n2 / 2);
    let mut c = DenseMatrix::zeros(m2, n2);
    for i in 0..hm {
        c.row_mut(i)[..hn].copy_from_slice(c11.row(i));
        c.row_mut(i)[hn..].copy_from_slice(c12.row(i));
        c.row_mut(hm + i)[..hn].copy_from_slice(c21.row(i));
        c.row_mut(hm + i)[hn..].copy_from_slice(c22.row(i));
    }
    crop(&c, m, n)
}

fn pad(x: &DenseMatrix, rows: usize, cols: usize) -> DenseMatrix {
    if x.rows() == rows && x.cols() == cols {
        return x.clone();
    }
    let mut p = DenseMatrix::zeros(rows, cols);
    for i in 0..x.rows() {
        p.row_mut(i)[..x.cols()].copy_from_slice(x.row(i));
    }
    p
}

fn crop(x: &DenseMatrix, rows: usize, cols: usize) -> DenseMatrix {
    if x.rows() == rows && x.cols() == cols {
        return x.clone();
    }
    let mut c = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        c.row_mut(i).copy_from_slice(&x.row(i)[..cols]);
    }
    c
}

fn quadrant(x: &DenseMatrix, qi: usize, qj: usize) -> DenseMatrix {
    let (hr, hc) = (x.rows() / 2, x.cols() / 2);
    let mut q = DenseMatrix::zeros(hr, hc);
    for i in 0..hr {
        q.row_mut(i)
            .copy_from_slice(&x.row(qi * hr + i)[qj * hc..qj * hc + hc]);
    }
    q
}

fn add(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let mut c = a.clone();
    for (cv, &bv) in c.data_mut().iter_mut().zip(b.data()) {
        *cv += bv;
    }
    c
}

fn sub(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let mut c = a.clone();
    for (cv, &bv) in c.data_mut().iter_mut().zip(b.data()) {
        *cv -= bv;
    }
    c
}

/// Strassen on even-dimension inputs.
fn strassen_even(a: &DenseMatrix, b: &DenseMatrix, cutoff: usize) -> DenseMatrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m.min(k).min(n) <= cutoff || m % 2 != 0 || k % 2 != 0 || n % 2 != 0 {
        return matmul(a, b);
    }
    strassen_even_split(a, b, cutoff)
}

/// [`strassen_even`] whose base cases run on the tiled parallel
/// scheduler with `threads` from the leaf's share of the budget. Since
/// the tiled product is bit-identical to the serial kernel, this changes
/// wall-clock only, never the output.
fn strassen_even_on(
    exec: &Executor,
    a: &DenseMatrix,
    b: &DenseMatrix,
    cutoff: usize,
    threads: usize,
) -> DenseMatrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if threads <= 1 {
        return strassen_even(a, b, cutoff);
    }
    if m.min(k).min(n) <= cutoff || m % 2 != 0 || k % 2 != 0 || n % 2 != 0 {
        return matmul_parallel_on(exec, a, b, threads);
    }
    let (a11, a12, a21, a22) = (
        quadrant(a, 0, 0),
        quadrant(a, 0, 1),
        quadrant(a, 1, 0),
        quadrant(a, 1, 1),
    );
    let (b11, b12, b21, b22) = (
        quadrant(b, 0, 0),
        quadrant(b, 0, 1),
        quadrant(b, 1, 0),
        quadrant(b, 1, 1),
    );
    let m1 = strassen_even_on(exec, &add(&a11, &a22), &add(&b11, &b22), cutoff, threads);
    let m2 = strassen_even_on(exec, &add(&a21, &a22), &b11, cutoff, threads);
    let m3 = strassen_even_on(exec, &a11, &sub(&b12, &b22), cutoff, threads);
    let m4 = strassen_even_on(exec, &a22, &sub(&b21, &b11), cutoff, threads);
    let m5 = strassen_even_on(exec, &add(&a11, &a12), &b22, cutoff, threads);
    let m6 = strassen_even_on(exec, &sub(&a21, &a11), &add(&b11, &b12), cutoff, threads);
    let m7 = strassen_even_on(exec, &sub(&a12, &a22), &add(&b21, &b22), cutoff, threads);
    assemble(m, n, &m1, &m2, &m3, &m4, &m5, &m6, &m7)
}

fn strassen_even_split(a: &DenseMatrix, b: &DenseMatrix, cutoff: usize) -> DenseMatrix {
    let (m, n) = (a.rows(), b.cols());
    let (a11, a12, a21, a22) = (
        quadrant(a, 0, 0),
        quadrant(a, 0, 1),
        quadrant(a, 1, 0),
        quadrant(a, 1, 1),
    );
    let (b11, b12, b21, b22) = (
        quadrant(b, 0, 0),
        quadrant(b, 0, 1),
        quadrant(b, 1, 0),
        quadrant(b, 1, 1),
    );
    let m1 = strassen_even(&add(&a11, &a22), &add(&b11, &b22), cutoff);
    let m2 = strassen_even(&add(&a21, &a22), &b11, cutoff);
    let m3 = strassen_even(&a11, &sub(&b12, &b22), cutoff);
    let m4 = strassen_even(&a22, &sub(&b21, &b11), cutoff);
    let m5 = strassen_even(&add(&a11, &a12), &b22, cutoff);
    let m6 = strassen_even(&sub(&a21, &a11), &add(&b11, &b12), cutoff);
    let m7 = strassen_even(&sub(&a12, &a22), &add(&b21, &b22), cutoff);
    assemble(m, n, &m1, &m2, &m3, &m4, &m5, &m6, &m7)
}

/// Combine the seven Strassen subproducts into the `m×n` result.
#[allow(clippy::too_many_arguments)]
fn assemble(
    m: usize,
    n: usize,
    m1: &DenseMatrix,
    m2: &DenseMatrix,
    m3: &DenseMatrix,
    m4: &DenseMatrix,
    m5: &DenseMatrix,
    m6: &DenseMatrix,
    m7: &DenseMatrix,
) -> DenseMatrix {
    let c11 = add(&sub(&add(m1, m4), m5), m7);
    let c12 = add(m3, m5);
    let c21 = add(m2, m4);
    let c22 = add(&add(&sub(m1, m2), m3), m6);

    let (hm, hn) = (m / 2, n / 2);
    let mut c = DenseMatrix::zeros(m, n);
    for i in 0..hm {
        c.row_mut(i)[..hn].copy_from_slice(c11.row(i));
        c.row_mut(i)[hn..].copy_from_slice(c12.row(i));
        c.row_mut(hm + i)[..hn].copy_from_slice(c21.row(i));
        c.row_mut(hm + i)[hn..].copy_from_slice(c22.row(i));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul_naive;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random01(rng: &mut StdRng, rows: usize, cols: usize) -> DenseMatrix {
        DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_bool(0.3) as u8 as f32)
    }

    #[test]
    fn matches_naive_square() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random01(&mut rng, 96, 96);
        let b = random01(&mut rng, 96, 96);
        assert_eq!(strassen(&a, &b, 16), matmul_naive(&a, &b));
    }

    #[test]
    fn matches_naive_odd_and_rectangular() {
        let mut rng = StdRng::seed_from_u64(12);
        for &(m, k, n) in &[(37, 41, 53), (65, 64, 63), (100, 30, 70)] {
            let a = random01(&mut rng, m, k);
            let b = random01(&mut rng, k, n);
            assert_eq!(strassen(&a, &b, 8), matmul_naive(&a, &b), "({m},{k},{n})");
        }
    }

    #[test]
    fn base_case_small_inputs() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        assert_eq!(strassen(&a, &b, 128).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn parallel_leaves_match_serial() {
        let mut rng = StdRng::seed_from_u64(14);
        for &(m, k, n) in &[(96, 96, 96), (65, 70, 63), (130, 40, 90)] {
            let a = random01(&mut rng, m, k);
            let b = random01(&mut rng, k, n);
            let serial = strassen(&a, &b, 16);
            for threads in [1, 2, 4, 7, 16] {
                assert_eq!(
                    strassen_parallel(&a, &b, 16, threads),
                    serial,
                    "({m},{k},{n}) x{threads}"
                );
            }
        }
    }

    #[test]
    fn counts_stay_exact() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random01(&mut rng, 130, 130);
        let b = random01(&mut rng, 130, 130);
        let c = strassen(&a, &b, 32);
        for &v in c.data() {
            assert_eq!(v.fract(), 0.0, "adjacency product must be integral");
        }
    }
}
