//! Sparse matrix multiplication (SpGEMM) over CSR operands.
//!
//! The heavy adjacency blocks of Algorithm 1 are 0/1 matrices whose density
//! varies wildly with the thresholds: near-dense on clique-like cores,
//! very sparse when Δ2 is small on skewed data. The dense kernel pays
//! `u·w` cells regardless; this row-wise Gustavson SpGEMM pays only for
//! realised products, making it the better backend below ~1–5% density.
//! Amossen–Pagh's "Faster join-projects and sparse matrix multiplications"
//! \[11\] — the paper's direct predecessor — is exactly about this regime,
//! so the backend is provided as a selectable alternative and ablated in
//! `bench/ablation`.

use crate::dense::DenseMatrix;

/// A CSR sparse 0/1-or-counted matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row `i` occupies `indptr[i]..indptr[i+1]` in `indices`/`values`.
    indptr: Vec<usize>,
    /// Column indices, ascending within each row.
    indices: Vec<u32>,
    /// Entry values (1.0 for adjacency matrices; counts after products).
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds from row-grouped `(row, col)` pairs (any order, duplicates
    /// summed as 1.0 each).
    pub fn from_pairs(rows: usize, cols: usize, pairs: &[(u32, u32)]) -> Self {
        let mut counts = vec![0usize; rows + 1];
        for &(r, c) in pairs {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "entry out of bounds"
            );
            counts[r as usize + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut indices = vec![0u32; pairs.len()];
        let mut cursor = counts.clone();
        for &(r, c) in pairs {
            indices[cursor[r as usize]] = c;
            cursor[r as usize] += 1;
        }
        // Sort and merge duplicates per row.
        let mut out_indices = Vec::with_capacity(pairs.len());
        let mut out_values = Vec::with_capacity(pairs.len());
        let mut indptr = vec![0usize; rows + 1];
        for i in 0..rows {
            let row = &mut indices[counts[i]..counts[i + 1]];
            row.sort_unstable();
            for &c in row.iter() {
                if out_indices.last() == Some(&c) && out_indices.len() > indptr[i] {
                    *out_values.last_mut().unwrap() += 1.0;
                } else {
                    out_indices.push(c);
                    out_values.push(1.0);
                }
            }
            indptr[i + 1] = out_indices.len();
        }
        Self {
            rows,
            cols,
            indptr,
            indices: out_indices,
            values: out_values,
        }
    }

    /// Converts a dense matrix (zeros dropped).
    pub fn from_dense(m: &DenseMatrix) -> Self {
        let mut indptr = vec![0usize; m.rows() + 1];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    indices.push(j as u32);
                    values.push(v);
                }
            }
            indptr[i + 1] = indices.len();
        }
        Self {
            rows: m.rows(),
            cols: m.cols(),
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// `(column, value)` pairs of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.indices[self.indptr[i]..self.indptr[i + 1]]
            .iter()
            .copied()
            .zip(
                self.values[self.indptr[i]..self.indptr[i + 1]]
                    .iter()
                    .copied(),
            )
    }

    /// Row-wise Gustavson SpGEMM: `self · other`, counts accumulated.
    ///
    /// Complexity `O(Σ realised products)` with a dense per-row scratch of
    /// `other.cols` accumulators (epoch-free: reset via touched list).
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn spgemm(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut acc = vec![0.0f32; other.cols];
        let mut touched: Vec<u32> = Vec::new();
        let mut indptr = vec![0usize; self.rows + 1];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for i in 0..self.rows {
            touched.clear();
            for (k, va) in self.row(i) {
                for (j, vb) in other.row(k as usize) {
                    if acc[j as usize] == 0.0 {
                        touched.push(j);
                    }
                    acc[j as usize] += va * vb;
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                indices.push(j);
                values.push(acc[j as usize]);
                acc[j as usize] = 0.0;
            }
            indptr[i + 1] = indices.len();
        }
        CsrMatrix {
            rows: self.rows,
            cols: other.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Iterator over `(row, col, value)` of entries with `value >= threshold`.
    pub fn entries_at_least(
        &self,
        threshold: f32,
    ) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |i| {
            self.row(i)
                .filter(move |&(_, v)| v >= threshold)
                .map(move |(j, v)| (i, j as usize, v))
        })
    }

    /// Densifies (for tests / small blocks).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                m.set(i, j as usize, v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse(rng: &mut StdRng, rows: usize, cols: usize, density: f64) -> DenseMatrix {
        DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_bool(density) as u8 as f32)
    }

    #[test]
    fn from_pairs_sorts_and_merges() {
        let m = CsrMatrix::from_pairs(2, 4, &[(0, 3), (0, 1), (0, 3), (1, 0)]);
        assert_eq!(m.nnz(), 3);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(1, 1.0), (3, 2.0)]);
    }

    #[test]
    fn spgemm_matches_dense_gemm() {
        let mut rng = StdRng::seed_from_u64(5);
        for &(m, k, n, d) in &[
            (20usize, 30usize, 25usize, 0.2),
            (50, 10, 50, 0.5),
            (7, 7, 7, 1.0),
        ] {
            let a = random_sparse(&mut rng, m, k, d);
            let b = random_sparse(&mut rng, k, n, d);
            let sa = CsrMatrix::from_dense(&a);
            let sb = CsrMatrix::from_dense(&b);
            assert_eq!(
                sa.spgemm(&sb).to_dense(),
                matmul(&a, &b),
                "({m},{k},{n},{d})"
            );
        }
    }

    #[test]
    fn dense_round_trip() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_sparse(&mut rng, 13, 17, 0.3);
        assert_eq!(CsrMatrix::from_dense(&a).to_dense(), a);
    }

    #[test]
    fn entries_at_least_filters() {
        let m = CsrMatrix::from_pairs(2, 3, &[(0, 1), (0, 1), (1, 2)]);
        let strong: Vec<_> = m.entries_at_least(2.0).collect();
        assert_eq!(strong, vec![(0, 1, 2.0)]);
        assert_eq!(m.entries_at_least(1.0).count(), 2);
    }

    #[test]
    fn empty_matrices() {
        let a = CsrMatrix::from_pairs(0, 0, &[]);
        assert_eq!(a.nnz(), 0);
        let b = CsrMatrix::from_pairs(3, 4, &[]);
        let c = CsrMatrix::from_pairs(4, 2, &[]);
        let p = b.spgemm(&c);
        assert_eq!((p.rows(), p.cols(), p.nnz()), (3, 2, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_pairs_bounds_checked() {
        let _ = CsrMatrix::from_pairs(2, 2, &[(2, 0)]);
    }
}
