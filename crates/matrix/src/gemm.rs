//! Cache-blocked serial and multi-threaded GEMM.
//!
//! The kernel computes `C = A · B` for row-major `f32` matrices. The loop
//! order is `i → k → j` with the innermost `j` loop running over contiguous
//! rows of `B` and `C`, which LLVM auto-vectorizes to full-width SIMD FMA.
//! Blocking over `k` (L1-panel) and `j` (L2-panel) keeps the working set in
//! cache for large inputs — the same design pressure the paper resolves with
//! Eigen/MKL, here re-implemented so the workspace has zero native
//! dependencies.
//!
//! Parallelism splits `C` into disjoint horizontal bands executed as tasks
//! on the shared [`mmjoin_executor::Executor`] pool. No two workers ever
//! touch the same cache line of `C`, reproducing the "coordination-free"
//! scaling of §6 / Figure 3b — but the threads now come out of the global
//! budget instead of being spawned per call.

use crate::dense::DenseMatrix;
use mmjoin_executor::Executor;
use std::sync::Mutex;

/// k-panel height: 256 f32 ≈ 1 KiB per B-row slab touched per panel.
const KC: usize = 256;
/// j-panel width: 1024 f32 = 4 KiB, a comfortable L1 slab alongside C's row.
const NC: usize = 1024;

/// Multiplies `a · b` into a fresh matrix.
///
/// ```
/// use mmjoin_matrix::{matmul, DenseMatrix};
/// let a = DenseMatrix::from_vec(1, 2, vec![1.0, 2.0]);
/// let b = DenseMatrix::from_vec(2, 1, vec![3.0, 4.0]);
/// assert_eq!(matmul(&a, &b).data(), &[11.0]);
/// ```
///
/// # Panics
/// Panics if the inner dimensions disagree.
pub fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut c);
    c
}

/// Multiplies `a · b`, accumulating into `c` (which must be pre-sized; its
/// prior contents are kept, i.e. this computes `C += A·B`).
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matmul_into(a: &DenseMatrix, b: &DenseMatrix, c: &mut DenseMatrix) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(c.rows(), a.rows(), "output rows must match A");
    assert_eq!(c.cols(), b.cols(), "output cols must match B");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    band_kernel(a.data(), b.data(), c.data_mut(), 0, m, k, n);
}

/// GEMM over rows `[row_lo, row_hi)` of A/C. `a`, `b`, `c` are row-major
/// flat buffers of an m×k, k×n and m×n matrix respectively.
fn band_kernel(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    row_lo: usize,
    row_hi: usize,
    k: usize,
    n: usize,
) {
    for kb in (0..k).step_by(KC) {
        let k_end = (kb + KC).min(k);
        for jb in (0..n).step_by(NC) {
            let j_end = (jb + NC).min(n);
            for i in row_lo..row_hi {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n + jb..i * n + j_end];
                for kk in kb..k_end {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        // Adjacency matrices are sparse-ish 0/1; skipping
                        // zero A-entries is a large practical win and costs
                        // one predictable branch per k.
                        continue;
                    }
                    let b_row = &b[kk * n + jb..kk * n + j_end];
                    // Contiguous FMA loop: auto-vectorizes.
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * bv;
                    }
                }
            }
        }
    }
}

/// Multi-threaded `a · b`, splitting C into horizontal bands computed on
/// the shared [`Executor::global`] pool. With `threads == 1` this is
/// exactly [`matmul`]. The band decomposition depends only on `threads`,
/// so the result is bit-identical at any pool occupancy.
pub fn matmul_parallel(a: &DenseMatrix, b: &DenseMatrix, threads: usize) -> DenseMatrix {
    matmul_parallel_on(Executor::global(), a, b, threads)
}

/// [`matmul_parallel`] on an explicit executor — the variant engine code
/// uses so a service-level thread budget governs the GEMM bands too.
pub fn matmul_parallel_on(
    exec: &Executor,
    a: &DenseMatrix,
    b: &DenseMatrix,
    threads: usize,
) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert!(threads >= 1, "need at least one thread");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = DenseMatrix::zeros(m, n);
    if m == 0 || k == 0 || n == 0 {
        return c;
    }
    let threads = threads.min(m);
    if threads == 1 {
        band_kernel(a.data(), b.data(), c.data_mut(), 0, m, k, n);
        return c;
    }
    let band = m.div_ceil(threads);
    let c_data = c.data_mut();
    // Split C into disjoint row bands; task t owns band t exclusively
    // (handed over through its slot — no two tasks share a cache line).
    let bands: Vec<Mutex<Option<&mut [f32]>>> = c_data
        .chunks_mut(band * n)
        .map(|chunk| Mutex::new(Some(chunk)))
        .collect();
    let tasks = bands.len();
    exec.run(threads, tasks, |t| {
        let mine = bands[t]
            .lock()
            .expect("band slot is uncontended")
            .take()
            .expect("each band is claimed once");
        let (lo, a_ref, b_ref) = (t * band, a.data(), b.data());
        let hi = (lo + band).min(m);
        // Re-base the band to local row 0 by slicing A rows directly.
        for i in lo..hi {
            let a_row = &a_ref[i * k..(i + 1) * k];
            let c_row = &mut mine[(i - lo) * n..(i - lo + 1) * n];
            for kb in (0..k).step_by(KC) {
                let k_end = (kb + KC).min(k);
                for kk in kb..k_end {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b_ref[kk * n..kk * n + n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * bv;
                    }
                }
            }
        }
    });
    c
}

/// Reference naive triple loop, used only by tests to validate the blocked
/// kernels.
pub fn matmul_naive(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows());
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.get(i, kk) * b.get(kk, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, density: f64) -> DenseMatrix {
        DenseMatrix::from_fn(
            rows,
            cols,
            |_, _| {
                if rng.gen_bool(density) {
                    1.0
                } else {
                    0.0
                }
            },
        )
    }

    #[test]
    fn small_known_product() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_matrix(&mut rng, 17, 17, 0.4);
        let id = DenseMatrix::identity(17);
        assert_eq!(matmul(&a, &id), a);
        assert_eq!(matmul(&id, &a), a);
    }

    #[test]
    fn blocked_matches_naive_rectangular() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 3), (64, 33, 129), (300, 50, 17)] {
            let a = random_matrix(&mut rng, m, k, 0.3);
            let b = random_matrix(&mut rng, k, n, 0.3);
            assert_eq!(matmul(&a, &b), matmul_naive(&a, &b), "({m},{k},{n})");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 97, 61, 0.25);
        let b = random_matrix(&mut rng, 61, 143, 0.25);
        let serial = matmul(&a, &b);
        for threads in [1, 2, 3, 4, 8, 97, 200] {
            assert_eq!(
                matmul_parallel(&a, &b, threads),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = DenseMatrix::identity(2);
        let b = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut c = DenseMatrix::from_vec(2, 2, vec![10.0, 10.0, 10.0, 10.0]);
        matmul_into(&a, &b, &mut c);
        assert_eq!(c.data(), &[11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn zero_dimension_products() {
        let a = DenseMatrix::zeros(0, 3);
        let b = DenseMatrix::zeros(3, 4);
        let c = matmul(&a, &b);
        assert_eq!((c.rows(), c.cols()), (0, 4));
        let a = DenseMatrix::zeros(2, 0);
        let b = DenseMatrix::zeros(0, 4);
        let c = matmul(&a, &b);
        assert_eq!((c.rows(), c.cols()), (2, 4));
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn counts_are_exact_for_adjacency_products() {
        // 0/1 matrices: product entries are exact small integers.
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_matrix(&mut rng, 40, 60, 0.5);
        let b = random_matrix(&mut rng, 60, 40, 0.5);
        let c = matmul(&a, &b);
        for &v in c.data() {
            assert_eq!(v.fract(), 0.0);
            assert!((0.0..=60.0).contains(&v));
        }
    }
}
