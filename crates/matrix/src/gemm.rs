//! Cache-blocked serial and multi-threaded GEMM over the dispatched
//! [`kernel`](crate::kernel) family.
//!
//! The kernel computes `C = A · B` for row-major `f32` matrices. All entry
//! points route through [`gemm_block`] with the process-wide
//! [`active_kernel`] — explicit AVX-512/AVX2 register tiles under the
//! `simd` feature, portable `std::simd` on nightly builds, and a blocked
//! auto-vectorizable scalar loop otherwise (see the dispatch ladder in
//! [`kernel`](crate::kernel)).
//!
//! Parallelism decomposes `C` into a 2D grid of `band × NC` tiles
//! scheduled as tasks on the shared [`mmjoin_executor::Executor`] pool:
//! B is packed **once** into a shared panel-major slab every tile reuses
//! (the old row-band split re-streamed all of B from DRAM per band), row
//! bands are [`MR`]-aligned so register tiles and the per-block density
//! scan never straddle a band edge, and the executor's chunk-claim
//! stealing rebalances density skew across bands. Tiles write disjoint
//! regions of `C` — the "coordination-free" scaling of §6 / Figure 3b —
//! and each tile walks its k-panels in serial order on the serial
//! kernel's own panel boundaries, so the result is bit-identical to the
//! serial product at any thread count and any pool occupancy.

use crate::arena;
use crate::dense::DenseMatrix;
use crate::kernel::{
    active_kernel, available_kernels, gemm_block, gemm_block_strided, k_panel, Kernel, MR, NC,
};
use mmjoin_executor::Executor;

/// Raw shared pointer the tile tasks use to write disjoint regions of C
/// (and to fill disjoint regions of the packing slab). Sound because the
/// scheduler hands every task a non-overlapping region.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
// SAFETY: the wrapped pointer is only dereferenced through disjoint
// per-task regions handed out by the tile scheduler (each task writes
// its own C tile / packing-slab panel), so sending or sharing the
// wrapper across worker threads cannot create aliasing writes.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor (rather than field reads) so closures capture the whole
    /// `Sync` wrapper — precise closure capture would otherwise capture
    /// the bare `*mut f32` field, which is not `Sync`.
    fn get(self) -> *mut f32 {
        self.0
    }
}

/// Tiles per thread the scheduler aims for: enough slack that the
/// executor's chunk-claim stealing can rebalance a dense straggler band
/// without shrinking tiles into pack/claim overhead.
const TILE_OVERSUB: usize = 4;

/// Multiplies `a · b` into a fresh matrix.
///
/// ```
/// use mmjoin_matrix::{matmul, DenseMatrix};
/// let a = DenseMatrix::from_vec(1, 2, vec![1.0, 2.0]);
/// let b = DenseMatrix::from_vec(2, 1, vec![3.0, 4.0]);
/// assert_eq!(matmul(&a, &b).data(), &[11.0]);
/// ```
///
/// # Panics
/// Panics if the inner dimensions disagree.
pub fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut c);
    c
}

/// Multiplies `a · b`, accumulating into `c` (which must be pre-sized; its
/// prior contents are kept, i.e. this computes `C += A·B`).
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matmul_into(a: &DenseMatrix, b: &DenseMatrix, c: &mut DenseMatrix) {
    matmul_into_with_kernel(active_kernel(), a, b, c);
}

/// [`matmul`] forced onto one specific kernel — the hook the
/// kernel-equivalence tests and the CI crossover gate use to compare
/// dispatch paths inside a single build.
///
/// # Panics
/// Panics if `kind` is not in [`available_kernels`] (requesting AVX-512 on
/// a machine without it would be UB, so it is checked here), or on
/// dimension mismatch.
pub fn matmul_with_kernel(kind: Kernel, a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert!(
        available_kernels().contains(&kind),
        "kernel {kind} is not available in this build/machine"
    );
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    matmul_into_with_kernel(kind, a, b, &mut c);
    c
}

fn matmul_into_with_kernel(kind: Kernel, a: &DenseMatrix, b: &DenseMatrix, c: &mut DenseMatrix) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(c.rows(), a.rows(), "output rows must match A");
    assert_eq!(c.cols(), b.cols(), "output cols must match B");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    gemm_block(kind, a.data(), b.data(), c.data_mut(), m, k, n);
}

/// Multi-threaded `a · b` on the tiled scheduler over the shared
/// [`Executor::global`] pool. With `threads == 1` this is exactly
/// [`matmul`]; at any higher thread count the tile decomposition depends
/// only on the shape and `threads`, and every tile reproduces the serial
/// kernel's own panel schedule, so the result is **bit-identical** to the
/// serial product at any pool occupancy.
pub fn matmul_parallel(a: &DenseMatrix, b: &DenseMatrix, threads: usize) -> DenseMatrix {
    matmul_parallel_on(Executor::global(), a, b, threads)
}

/// [`matmul_parallel`] on an explicit executor — the variant engine code
/// uses so a service-level thread budget governs the GEMM tiles too.
pub fn matmul_parallel_on(
    exec: &Executor,
    a: &DenseMatrix,
    b: &DenseMatrix,
    threads: usize,
) -> DenseMatrix {
    matmul_parallel_with_kernel_on(exec, active_kernel(), a, b, threads)
}

/// [`matmul_parallel`] forced onto one specific kernel — the hook the
/// kernel-equivalence tests use to prove the tile scheduler bit-exact
/// against the serial path for every dispatchable kernel, not just the
/// active one.
///
/// # Panics
/// Panics if `kind` is not in [`available_kernels`], or on dimension
/// mismatch.
pub fn matmul_parallel_with_kernel(
    kind: Kernel,
    a: &DenseMatrix,
    b: &DenseMatrix,
    threads: usize,
) -> DenseMatrix {
    assert!(
        available_kernels().contains(&kind),
        "kernel {kind} is not available in this build/machine"
    );
    matmul_parallel_with_kernel_on(Executor::global(), kind, a, b, threads)
}

pub(crate) fn matmul_parallel_with_kernel_on(
    exec: &Executor,
    kind: Kernel,
    a: &DenseMatrix,
    b: &DenseMatrix,
    threads: usize,
) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert!(threads >= 1, "need at least one thread");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = DenseMatrix::zeros(m, n);
    if m == 0 || k == 0 || n == 0 {
        return c;
    }
    if threads == 1 {
        gemm_block(kind, a.data(), b.data(), c.data_mut(), m, k, n);
        return c;
    }
    gemm_tiled(
        exec,
        kind,
        a.data(),
        b.data(),
        c.data_mut(),
        m,
        k,
        n,
        threads,
    );
    c
}

/// The 2D tile scheduler: pack B once into a shared panel-major slab,
/// then compute `C` as a grid of MR-aligned row bands × NC-wide column
/// panels claimed through the executor's chunk-claim stealing.
///
/// Bit-exactness vs the serial `gemm_block` is by construction, not by
/// tolerance:
/// * k is sliced on [`k_panel`]`(kind, n)` boundaries — the exact panel
///   depths the serial kernel derives internally (each tile also gets
///   `kc_cols = n` so its *internal* panel math agrees);
/// * row bands are MR-aligned, so every register tile / density-probe
///   block covers the same absolute rows as in the serial schedule;
/// * column panels sit on NC boundaries, matching the serial j-panels;
/// * each tile walks its k-panels in increasing order, so every C element
///   accumulates its k-contributions in the serial order.
///
/// The per-element float contraction sequence is therefore identical to
/// the serial kernel's, for arbitrary inputs — not just exact 0/1 ones.
#[allow(clippy::too_many_arguments)]
fn gemm_tiled(
    exec: &Executor,
    kind: Kernel,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    let kc = k_panel(kind, n).min(k);
    let k_panels = k.div_ceil(kc);
    let j_panels = n.div_ceil(NC);
    // Aim for TILE_OVERSUB tiles per thread, but never split a register
    // tile: band heights round up to a multiple of MR (satellite fix for
    // the old `m / threads` split, whose mid-block edges defeated the
    // per-block density scan and register tiling).
    let max_bands = m.div_ceil(MR);
    let want_bands = (threads * TILE_OVERSUB).div_ceil(j_panels).max(1);
    let band_rows = m.div_ceil(want_bands.min(max_bands)).next_multiple_of(MR);
    let bands = m.div_ceil(band_rows);
    let tiles = bands * j_panels;

    // Slab layout: the (ki, pi) panel — k rows [kb, kb+kd), columns
    // [jb, jb+w) — lives at offset `kb·n + kd·jb`, row-major with row
    // stride w. Offsets of consecutive panels tile the k·n floats of B
    // exactly, and every panel is packed once and read by all `bands`
    // row bands (the old row-band split streamed all of B per band).
    arena::with_scratch(k * n, |slab| {
        let sp = SendPtr(slab.as_mut_ptr());
        let cp = SendPtr(c.as_mut_ptr());
        // Runtime contract (debug builds only): the executor's shared
        // counter must hand each tile index to exactly one task — a
        // double claim means two threads writing the same C tile, which
        // the SAFETY arguments below take as a given.
        #[cfg(debug_assertions)]
        let claimed: Vec<std::sync::atomic::AtomicBool> = (0..tiles)
            .map(|_| std::sync::atomic::AtomicBool::new(false))
            .collect();
        // Phase 1: pack every B panel, one task per (k-panel, j-panel).
        exec.run(threads, k_panels * j_panels, |t| {
            let kb = (t / j_panels) * kc;
            let kd = (kb + kc).min(k) - kb;
            let jb = (t % j_panels) * NC;
            let w = (jb + NC).min(n) - jb;
            // SAFETY: panel base offsets tile the k*n-float slab exactly
            // (kb*n floats of full-width panels above, plus kd*jb floats
            // of this panel row's earlier j-panels), so the offset is
            // in-bounds and each task's panel is disjoint.
            let dst = unsafe { sp.get().add(kb * n + kd * jb) };
            for r in 0..kd {
                // SAFETY: destination rows [0, kd) of this panel are
                // exclusively ours (disjoint slab offsets per task) and
                // the source row is in-bounds in B.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        b.as_ptr().add((kb + r) * n + jb),
                        dst.add(r * w),
                        w,
                    );
                }
            }
        });
        // Phase 2: compute the band × j-panel tile grid. Tasks claim
        // tiles through the executor's shared counter, so a dense
        // straggler band ends up spread over whichever threads are free,
        // while the *result* stays schedule-independent.
        exec.run(threads, tiles, |t| {
            #[cfg(debug_assertions)]
            assert!(
                !claimed[t].swap(true, std::sync::atomic::Ordering::Relaxed),
                "tile {t} claimed by two tasks"
            );
            let i0 = (t / j_panels) * band_rows;
            let i1 = (i0 + band_rows).min(m);
            let jb = (t % j_panels) * NC;
            let w = (jb + NC).min(n) - jb;
            for ki in 0..k_panels {
                let kb = ki * kc;
                let kd = (kb + kc).min(k) - kb;
                // SAFETY: A rows [i0, i1) are read-only; the packed panel
                // was fully written in phase 1 (the two `exec.run` calls
                // are separated by the executor's completion barrier);
                // C rows [i0, i1) × cols [jb, jb+w) belong to this tile
                // alone. `kind` came from the dispatch ladder.
                unsafe {
                    gemm_block_strided(
                        kind,
                        a.as_ptr().add(i0 * k + kb),
                        k,
                        sp.get().add(kb * n + kd * jb),
                        w,
                        cp.get().add(i0 * n + jb),
                        n,
                        i1 - i0,
                        kd,
                        w,
                        n,
                    );
                }
            }
        });
        #[cfg(debug_assertions)]
        for (t, flag) in claimed.iter().enumerate() {
            assert!(
                flag.load(std::sync::atomic::Ordering::Relaxed),
                "tile {t} never claimed"
            );
        }
    });
}

/// Reference naive triple loop, used only by tests to validate the blocked
/// kernels.
pub fn matmul_naive(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows());
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.get(i, kk) * b.get(kk, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, density: f64) -> DenseMatrix {
        DenseMatrix::from_fn(
            rows,
            cols,
            |_, _| {
                if rng.gen_bool(density) {
                    1.0
                } else {
                    0.0
                }
            },
        )
    }

    #[test]
    fn small_known_product() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_matrix(&mut rng, 17, 17, 0.4);
        let id = DenseMatrix::identity(17);
        assert_eq!(matmul(&a, &id), a);
        assert_eq!(matmul(&id, &a), a);
    }

    #[test]
    fn blocked_matches_naive_rectangular() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 3), (64, 33, 129), (300, 50, 17)] {
            let a = random_matrix(&mut rng, m, k, 0.3);
            let b = random_matrix(&mut rng, k, n, 0.3);
            assert_eq!(matmul(&a, &b), matmul_naive(&a, &b), "({m},{k},{n})");
        }
    }

    /// Every dispatchable kernel agrees exactly with the naive reference
    /// on 0/1 inputs, across shapes chosen to hit lane-width and block
    /// remainders (odd dims, single row/column, tile-straddling sizes).
    #[test]
    fn every_kernel_matches_naive_on_edge_shapes() {
        let mut rng = StdRng::seed_from_u64(21);
        let shapes = [
            (1, 1, 1),
            (1, 7, 19),   // single A row, sub-tile width
            (9, 300, 1),  // single C column, k crosses the KC=256 panel
            (4, 16, 16),  // exactly one register tile
            (5, 17, 33),  // every dim one past a boundary
            (31, 64, 47), // row remainder < MR, column remainder < NR
        ];
        for kind in available_kernels() {
            for &(m, k, n) in &shapes {
                let a = random_matrix(&mut rng, m, k, 0.35);
                let b = random_matrix(&mut rng, k, n, 0.35);
                assert_eq!(
                    matmul_with_kernel(kind, &a, &b),
                    matmul_naive(&a, &b),
                    "kernel {kind} on ({m},{k},{n})"
                );
            }
        }
    }

    /// For arbitrary (non-0/1) floats the SIMD kernels may reassociate
    /// and contract into FMA; they must still match the reference within
    /// a k-scaled relative tolerance.
    #[test]
    fn kernels_match_naive_on_general_floats_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(22);
        let (m, k, n) = (23, 77, 41);
        let a = DenseMatrix::from_fn(m, k, |_, _| rng.gen_range(-1.0f64..1.0) as f32);
        let b = DenseMatrix::from_fn(k, n, |_, _| rng.gen_range(-1.0f64..1.0) as f32);
        let reference = matmul_naive(&a, &b);
        for kind in available_kernels() {
            let got = matmul_with_kernel(kind, &a, &b);
            for (x, y) in got.data().iter().zip(reference.data()) {
                let bound = 1e-5 * k as f32;
                assert!(
                    (x - y).abs() <= bound,
                    "kernel {kind}: {x} vs {y} (bound {bound})"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 97, 61, 0.25);
        let b = random_matrix(&mut rng, 61, 143, 0.25);
        let serial = matmul(&a, &b);
        for threads in [1, 2, 3, 4, 8, 97, 200] {
            assert_eq!(
                matmul_parallel(&a, &b, threads),
                serial,
                "threads={threads}"
            );
        }
    }

    /// The tile scheduler reproduces the serial kernel's contraction
    /// order exactly, so even arbitrary floats — where FMA rounding makes
    /// order observable — come out bit-identical, not merely close.
    #[test]
    fn parallel_is_bit_exact_on_general_floats() {
        let mut rng = StdRng::seed_from_u64(31);
        for &(m, k, n) in &[(37, 300, 143), (5, 61, 1040), (130, 17, 29)] {
            let a = DenseMatrix::from_fn(m, k, |_, _| rng.gen_range(-2.0f64..2.0) as f32);
            let b = DenseMatrix::from_fn(k, n, |_, _| rng.gen_range(-2.0f64..2.0) as f32);
            let serial = matmul(&a, &b);
            for threads in [2, 3, 8, 64] {
                let par = matmul_parallel(&a, &b, threads);
                assert_eq!(
                    par.data(),
                    serial.data(),
                    "({m},{k},{n}) threads={threads} diverged bit-wise"
                );
            }
        }
    }

    /// Row counts around MR-multiple band edges: the scheduler must keep
    /// bands MR-aligned (partial register blocks only at the true bottom
    /// of C) for every m, including m smaller than one block.
    #[test]
    fn parallel_handles_band_boundary_row_counts() {
        let mut rng = StdRng::seed_from_u64(32);
        for m in [1, MR - 1, MR, MR + 1, 2 * MR, 8 * MR - 1, 8 * MR + 1] {
            let a = random_matrix(&mut rng, m, 50, 0.3);
            let b = random_matrix(&mut rng, 50, 77, 0.3);
            let serial = matmul(&a, &b);
            for threads in [2, 8] {
                assert_eq!(
                    matmul_parallel(&a, &b, threads),
                    serial,
                    "m={m} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = DenseMatrix::identity(2);
        let b = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut c = DenseMatrix::from_vec(2, 2, vec![10.0, 10.0, 10.0, 10.0]);
        matmul_into(&a, &b, &mut c);
        assert_eq!(c.data(), &[11.0, 12.0, 13.0, 14.0]);
    }

    /// The accumulation contract holds under the register tiling: a
    /// pre-loaded C with shapes spanning full tiles, row remainders and
    /// column tails comes out as `C0 + A·B` exactly.
    #[test]
    fn matmul_into_accumulates_under_tiling() {
        let mut rng = StdRng::seed_from_u64(23);
        for &(m, k, n) in &[(4, 16, 32), (7, 40, 37), (1, 5, 100)] {
            let a = random_matrix(&mut rng, m, k, 0.4);
            let b = random_matrix(&mut rng, k, n, 0.4);
            let base = random_matrix(&mut rng, m, n, 0.5);
            let mut c = base.clone();
            matmul_into(&a, &b, &mut c);
            let product = matmul_naive(&a, &b);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(
                        c.get(i, j),
                        base.get(i, j) + product.get(i, j),
                        "({m},{k},{n}) at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_dimension_products() {
        let a = DenseMatrix::zeros(0, 3);
        let b = DenseMatrix::zeros(3, 4);
        let c = matmul(&a, &b);
        assert_eq!((c.rows(), c.cols()), (0, 4));
        let a = DenseMatrix::zeros(2, 0);
        let b = DenseMatrix::zeros(0, 4);
        let c = matmul(&a, &b);
        assert_eq!((c.rows(), c.cols()), (2, 4));
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn counts_are_exact_for_adjacency_products() {
        // 0/1 matrices: product entries are exact small integers.
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_matrix(&mut rng, 40, 60, 0.5);
        let b = random_matrix(&mut rng, 60, 40, 0.5);
        let c = matmul(&a, &b);
        for &v in c.data() {
            assert_eq!(v.fract(), 0.0);
            assert!((0.0..=60.0).contains(&v));
        }
    }
}
