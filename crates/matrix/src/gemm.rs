//! Cache-blocked serial and multi-threaded GEMM over the dispatched
//! [`kernel`](crate::kernel) family.
//!
//! The kernel computes `C = A · B` for row-major `f32` matrices. All entry
//! points route through [`gemm_block`] with the process-wide
//! [`active_kernel`] — explicit AVX-512/AVX2 register tiles under the
//! `simd` feature, portable `std::simd` on nightly builds, and a blocked
//! auto-vectorizable scalar loop otherwise (see the dispatch ladder in
//! [`kernel`](crate::kernel)).
//!
//! Parallelism splits `C` into disjoint horizontal bands executed as tasks
//! on the shared [`mmjoin_executor::Executor`] pool. No two workers ever
//! touch the same cache line of `C`, reproducing the "coordination-free"
//! scaling of §6 / Figure 3b — but the threads now come out of the global
//! budget instead of being spawned per call, and each band runs the same
//! dispatched microkernel as the serial path.

use crate::dense::DenseMatrix;
use crate::kernel::{active_kernel, available_kernels, gemm_block, Kernel};
use mmjoin_executor::Executor;
use std::sync::Mutex;

/// Multiplies `a · b` into a fresh matrix.
///
/// ```
/// use mmjoin_matrix::{matmul, DenseMatrix};
/// let a = DenseMatrix::from_vec(1, 2, vec![1.0, 2.0]);
/// let b = DenseMatrix::from_vec(2, 1, vec![3.0, 4.0]);
/// assert_eq!(matmul(&a, &b).data(), &[11.0]);
/// ```
///
/// # Panics
/// Panics if the inner dimensions disagree.
pub fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut c);
    c
}

/// Multiplies `a · b`, accumulating into `c` (which must be pre-sized; its
/// prior contents are kept, i.e. this computes `C += A·B`).
///
/// # Panics
/// Panics on any dimension mismatch.
pub fn matmul_into(a: &DenseMatrix, b: &DenseMatrix, c: &mut DenseMatrix) {
    matmul_into_with_kernel(active_kernel(), a, b, c);
}

/// [`matmul`] forced onto one specific kernel — the hook the
/// kernel-equivalence tests and the CI crossover gate use to compare
/// dispatch paths inside a single build.
///
/// # Panics
/// Panics if `kind` is not in [`available_kernels`] (requesting AVX-512 on
/// a machine without it would be UB, so it is checked here), or on
/// dimension mismatch.
pub fn matmul_with_kernel(kind: Kernel, a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert!(
        available_kernels().contains(&kind),
        "kernel {kind} is not available in this build/machine"
    );
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    matmul_into_with_kernel(kind, a, b, &mut c);
    c
}

fn matmul_into_with_kernel(kind: Kernel, a: &DenseMatrix, b: &DenseMatrix, c: &mut DenseMatrix) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(c.rows(), a.rows(), "output rows must match A");
    assert_eq!(c.cols(), b.cols(), "output cols must match B");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    gemm_block(kind, a.data(), b.data(), c.data_mut(), m, k, n);
}

/// Multi-threaded `a · b`, splitting C into horizontal bands computed on
/// the shared [`Executor::global`] pool. With `threads == 1` this is
/// exactly [`matmul`]. The band decomposition depends only on `threads`,
/// so the result is bit-identical at any pool occupancy.
pub fn matmul_parallel(a: &DenseMatrix, b: &DenseMatrix, threads: usize) -> DenseMatrix {
    matmul_parallel_on(Executor::global(), a, b, threads)
}

/// [`matmul_parallel`] on an explicit executor — the variant engine code
/// uses so a service-level thread budget governs the GEMM bands too.
pub fn matmul_parallel_on(
    exec: &Executor,
    a: &DenseMatrix,
    b: &DenseMatrix,
    threads: usize,
) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert!(threads >= 1, "need at least one thread");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = DenseMatrix::zeros(m, n);
    if m == 0 || k == 0 || n == 0 {
        return c;
    }
    let kind = active_kernel();
    let threads = threads.min(m);
    if threads == 1 {
        gemm_block(kind, a.data(), b.data(), c.data_mut(), m, k, n);
        return c;
    }
    let band = m.div_ceil(threads);
    let c_data = c.data_mut();
    // Split C into disjoint row bands; task t owns band t exclusively
    // (handed over through its slot — no two tasks share a cache line).
    let bands: Vec<Mutex<Option<&mut [f32]>>> = c_data
        .chunks_mut(band * n)
        .map(|chunk| Mutex::new(Some(chunk)))
        .collect();
    let tasks = bands.len();
    exec.run(threads, tasks, |t| {
        let mine = bands[t]
            .lock()
            .expect("band slot is uncontended")
            .take()
            .expect("each band is claimed once");
        let lo = t * band;
        let hi = (lo + band).min(m);
        // The band is a re-based (hi-lo)×n GEMM over A's row slice: the
        // same dispatched microkernel as the serial path, per band.
        gemm_block(
            kind,
            &a.data()[lo * k..hi * k],
            b.data(),
            mine,
            hi - lo,
            k,
            n,
        );
    });
    c
}

/// Reference naive triple loop, used only by tests to validate the blocked
/// kernels.
pub fn matmul_naive(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows());
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.get(i, kk) * b.get(kk, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, density: f64) -> DenseMatrix {
        DenseMatrix::from_fn(
            rows,
            cols,
            |_, _| {
                if rng.gen_bool(density) {
                    1.0
                } else {
                    0.0
                }
            },
        )
    }

    #[test]
    fn small_known_product() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_matrix(&mut rng, 17, 17, 0.4);
        let id = DenseMatrix::identity(17);
        assert_eq!(matmul(&a, &id), a);
        assert_eq!(matmul(&id, &a), a);
    }

    #[test]
    fn blocked_matches_naive_rectangular() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 3), (64, 33, 129), (300, 50, 17)] {
            let a = random_matrix(&mut rng, m, k, 0.3);
            let b = random_matrix(&mut rng, k, n, 0.3);
            assert_eq!(matmul(&a, &b), matmul_naive(&a, &b), "({m},{k},{n})");
        }
    }

    /// Every dispatchable kernel agrees exactly with the naive reference
    /// on 0/1 inputs, across shapes chosen to hit lane-width and block
    /// remainders (odd dims, single row/column, tile-straddling sizes).
    #[test]
    fn every_kernel_matches_naive_on_edge_shapes() {
        let mut rng = StdRng::seed_from_u64(21);
        let shapes = [
            (1, 1, 1),
            (1, 7, 19),   // single A row, sub-tile width
            (9, 300, 1),  // single C column, k crosses the KC=256 panel
            (4, 16, 16),  // exactly one register tile
            (5, 17, 33),  // every dim one past a boundary
            (31, 64, 47), // row remainder < MR, column remainder < NR
        ];
        for kind in available_kernels() {
            for &(m, k, n) in &shapes {
                let a = random_matrix(&mut rng, m, k, 0.35);
                let b = random_matrix(&mut rng, k, n, 0.35);
                assert_eq!(
                    matmul_with_kernel(kind, &a, &b),
                    matmul_naive(&a, &b),
                    "kernel {kind} on ({m},{k},{n})"
                );
            }
        }
    }

    /// For arbitrary (non-0/1) floats the SIMD kernels may reassociate
    /// and contract into FMA; they must still match the reference within
    /// a k-scaled relative tolerance.
    #[test]
    fn kernels_match_naive_on_general_floats_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(22);
        let (m, k, n) = (23, 77, 41);
        let a = DenseMatrix::from_fn(m, k, |_, _| rng.gen_range(-1.0f64..1.0) as f32);
        let b = DenseMatrix::from_fn(k, n, |_, _| rng.gen_range(-1.0f64..1.0) as f32);
        let reference = matmul_naive(&a, &b);
        for kind in available_kernels() {
            let got = matmul_with_kernel(kind, &a, &b);
            for (x, y) in got.data().iter().zip(reference.data()) {
                let bound = 1e-5 * k as f32;
                assert!(
                    (x - y).abs() <= bound,
                    "kernel {kind}: {x} vs {y} (bound {bound})"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 97, 61, 0.25);
        let b = random_matrix(&mut rng, 61, 143, 0.25);
        let serial = matmul(&a, &b);
        for threads in [1, 2, 3, 4, 8, 97, 200] {
            assert_eq!(
                matmul_parallel(&a, &b, threads),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = DenseMatrix::identity(2);
        let b = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut c = DenseMatrix::from_vec(2, 2, vec![10.0, 10.0, 10.0, 10.0]);
        matmul_into(&a, &b, &mut c);
        assert_eq!(c.data(), &[11.0, 12.0, 13.0, 14.0]);
    }

    /// The accumulation contract holds under the register tiling: a
    /// pre-loaded C with shapes spanning full tiles, row remainders and
    /// column tails comes out as `C0 + A·B` exactly.
    #[test]
    fn matmul_into_accumulates_under_tiling() {
        let mut rng = StdRng::seed_from_u64(23);
        for &(m, k, n) in &[(4, 16, 32), (7, 40, 37), (1, 5, 100)] {
            let a = random_matrix(&mut rng, m, k, 0.4);
            let b = random_matrix(&mut rng, k, n, 0.4);
            let base = random_matrix(&mut rng, m, n, 0.5);
            let mut c = base.clone();
            matmul_into(&a, &b, &mut c);
            let product = matmul_naive(&a, &b);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(
                        c.get(i, j),
                        base.get(i, j) + product.get(i, j),
                        "({m},{k},{n}) at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_dimension_products() {
        let a = DenseMatrix::zeros(0, 3);
        let b = DenseMatrix::zeros(3, 4);
        let c = matmul(&a, &b);
        assert_eq!((c.rows(), c.cols()), (0, 4));
        let a = DenseMatrix::zeros(2, 0);
        let b = DenseMatrix::zeros(0, 4);
        let c = matmul(&a, &b);
        assert_eq!((c.rows(), c.cols()), (2, 4));
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn counts_are_exact_for_adjacency_products() {
        // 0/1 matrices: product entries are exact small integers.
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_matrix(&mut rng, 40, 60, 0.5);
        let b = random_matrix(&mut rng, 60, 40, 0.5);
        let c = matmul(&a, &b);
        for &v in c.data() {
            assert_eq!(v.fract(), 0.0);
            assert!((0.0..=60.0).contains(&v));
        }
    }
}
