//! `mmjoin` — the workspace facade: one import, one front door.
//!
//! Re-exports the unified query API ([`Query`], [`Engine`], [`Sink`],
//! [`EngineRegistry`], the stock sinks) together with the storage and
//! configuration types callers need, and assembles the
//! [`default_registry`] containing every engine in the workspace:
//!
//! | name | families |
//! |------|----------|
//! | `MMJoin` | 2-path (± counts), star, similarity, containment |
//! | `Non-MMJoin` | 2-path, star |
//! | `WCOJ` | 2-path, star |
//! | `HashJoin(Postgres)` | 2-path |
//! | `MergeJoin(MySQL)` | 2-path |
//! | `SystemX` | 2-path |
//! | `SetIntersect(EmptyHeaded)` | 2-path |
//! | `HashJoin(DBMS)` | star |
//! | `SortDedup(reference)` | star |
//! | `SizeAware` | similarity |
//! | `SizeAware++` | similarity |
//! | `PRETTI` | containment |
//! | `LIMIT+` | containment |
//! | `PIEJoin` | containment |
//!
//! ```
//! use mmjoin::{default_registry, PairSink, Query, Relation};
//!
//! let r = Relation::from_edges([(0, 0), (1, 0), (2, 1)]);
//! let registry = default_registry(1);
//! let query = Query::two_path(&r, &r).build()?;
//!
//! // Run one engine by name…
//! let mut sink = PairSink::new();
//! let stats = registry.execute("MMJoin", &query, &mut sink)?;
//! assert_eq!(stats.rows, 5);
//!
//! // …or every engine that supports the query, with no hard-coded list.
//! for engine in registry.engines_for(&query) {
//!     let mut sink = PairSink::new();
//!     engine.execute(&query, &mut sink)?;
//!     assert_eq!(sink.pairs.len(), 5, "{} disagrees", engine.name());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use mmjoin_api::{
    CountSink, Engine, EngineError, EngineRegistry, ExecStats, ForEachSink, PairSink, PlanKind,
    PlanStats, Query, QueryError, QueryFamily, Sink, VecSink,
};
pub use mmjoin_core::{HeavyBackend, JoinConfig, MmJoinEngine};
pub use mmjoin_storage::{Relation, RelationBuilder, Value};

use mmjoin_baseline::fulljoin::{HashJoinEngine, SortMergeEngine, SystemXEngine};
use mmjoin_baseline::nonmm::ExpandDedupEngine;
use mmjoin_baseline::setintersect::SetIntersectEngine;
use mmjoin_baseline::star::{HashDedupStarEngine, SortDedupStarEngine};
use mmjoin_scj::{ContainmentEngine, ScjAlgorithm};
use mmjoin_ssj::{SimilarityEngine, SsjAlgorithm};
use mmjoin_wcoj::WcojEngine;

/// The full engine roster on `threads` workers (engines without a
/// parallelism knob ignore it). MMJoin is registered first so it leads
/// every enumeration.
pub fn default_registry(threads: usize) -> EngineRegistry {
    let config = JoinConfig {
        threads: threads.max(1),
        ..JoinConfig::default()
    };
    registry_with_config(&config)
}

/// The full engine roster, every configurable engine sharing `config` —
/// the single object that governs parallelism and all other execution
/// knobs.
pub fn registry_with_config(config: &JoinConfig) -> EngineRegistry {
    let mut registry = EngineRegistry::new();
    registry
        .register(Box::new(MmJoinEngine::new(config.clone())))
        .register(Box::new(ExpandDedupEngine::parallel(config.threads)))
        .register(Box::new(WcojEngine))
        .register(Box::new(HashJoinEngine))
        .register(Box::new(SortMergeEngine))
        .register(Box::new(SystemXEngine))
        .register(Box::new(SetIntersectEngine))
        .register(Box::new(HashDedupStarEngine))
        .register(Box::new(SortDedupStarEngine))
        .register(Box::new(SimilarityEngine::new(
            SsjAlgorithm::SizeAware,
            config.clone(),
        )))
        .register(Box::new(SimilarityEngine::new(
            SsjAlgorithm::SizeAwarePP(mmjoin_ssj::SizeAwarePPOpts::all()),
            config.clone(),
        )))
        .register(Box::new(ContainmentEngine::new(
            ScjAlgorithm::Pretti,
            config.clone(),
        )))
        .register(Box::new(ContainmentEngine::new(
            ScjAlgorithm::LimitPlus { limit: 2 },
            config.clone(),
        )))
        .register(Box::new(ContainmentEngine::new(
            ScjAlgorithm::PieJoin,
            config.clone(),
        )));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn default_registry_covers_all_families() {
        let registry = default_registry(1);
        let r = rel(&[(0, 0), (1, 0)]);
        let rels = vec![r.clone(), r.clone()];
        let queries = [
            Query::two_path(&r, &r).build().unwrap(),
            Query::star(&rels).build().unwrap(),
            Query::similarity(&r, 1).build().unwrap(),
            Query::containment(&r).build().unwrap(),
        ];
        for q in &queries {
            let engines = registry.engines_for(q);
            assert!(
                engines.len() >= 2,
                "{:?} should have multiple engines, got {:?}",
                q.family(),
                engines.iter().map(|e| e.name()).collect::<Vec<_>>()
            );
            assert_eq!(engines[0].name(), "MMJoin", "MMJoin leads every family");
        }
    }

    #[test]
    fn every_engine_answers_its_families_consistently() {
        let r = rel(&[(0, 0), (0, 1), (1, 0), (2, 1), (2, 0), (3, 2)]);
        let registry = default_registry(2);
        let q = Query::two_path(&r, &r).build().unwrap();
        let engines = registry.engines_for(&q);
        let mut reference: Option<Vec<(Value, Value)>> = None;
        for e in engines {
            let mut sink = PairSink::new();
            e.execute(&q, &mut sink).unwrap();
            match &reference {
                None => reference = Some(sink.pairs),
                Some(r0) => assert_eq!(&sink.pairs, r0, "{} disagrees", e.name()),
            }
        }
    }

    #[test]
    fn expected_names_present() {
        let registry = default_registry(1);
        for name in [
            "MMJoin",
            "Non-MMJoin",
            "WCOJ",
            "HashJoin(Postgres)",
            "MergeJoin(MySQL)",
            "SystemX",
            "SetIntersect(EmptyHeaded)",
            "HashJoin(DBMS)",
            "SortDedup(reference)",
            "SizeAware",
            "SizeAware++",
            "PRETTI",
            "LIMIT+",
            "PIEJoin",
        ] {
            assert!(registry.get(name).is_some(), "missing engine {name}");
        }
        assert_eq!(registry.len(), 14);
    }
}
