//! `mmjoin` — the workspace facade: one import, one front door.
//!
//! Re-exports the unified query API ([`Query`], [`Engine`], [`Sink`],
//! [`EngineRegistry`], the stock sinks), the storage and configuration
//! types callers need, the service layer ([`Service`], [`Request`] —
//! see `mmjoin-service`), and the [`default_registry`] containing every
//! engine in the workspace:
//!
//! | name | families |
//! |------|----------|
//! | `MMJoin` | 2-path (± counts), star, similarity, containment |
//! | `Non-MMJoin` | 2-path, star |
//! | `WCOJ` | 2-path, star |
//! | `HashJoin(Postgres)` | 2-path |
//! | `MergeJoin(MySQL)` | 2-path |
//! | `SystemX` | 2-path |
//! | `SetIntersect(EmptyHeaded)` | 2-path |
//! | `HashJoin(DBMS)` | star |
//! | `SortDedup(reference)` | star |
//! | `SizeAware` | similarity |
//! | `SizeAware++` | similarity |
//! | `PRETTI` | containment |
//! | `LIMIT+` | containment |
//! | `PIEJoin` | containment |
//!
//! ```
//! use mmjoin::{default_registry, PairSink, Query, Relation};
//!
//! let r = Relation::from_edges([(0, 0), (1, 0), (2, 1)]);
//! let registry = default_registry(1);
//! let query = Query::two_path(&r, &r).build()?;
//!
//! // Run one engine by name…
//! let mut sink = PairSink::new();
//! let stats = registry.execute("MMJoin", &query, &mut sink)?;
//! assert_eq!(stats.rows, 5);
//!
//! // …or every engine that supports the query, with no hard-coded list.
//! for engine in registry.engines_for(&query) {
//!     let mut sink = PairSink::new();
//!     engine.execute(&query, &mut sink)?;
//!     assert_eq!(sink.pairs.len(), 5, "{} disagrees", engine.name());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! For a long-lived process serving many queries, use the service layer
//! instead of the raw registry — it caches relation statistics and query
//! results and auto-selects engines per query:
//!
//! ```
//! use mmjoin::{Relation, Request, Service};
//!
//! let service = Service::with_default_registry(2);
//! service.register("r", Relation::from_edges([(0, 0), (1, 0), (2, 1)]));
//! let response = service.query(Request::two_path("r", "r"))?;
//! assert_eq!(response.rows.len(), 5);
//! # Ok::<(), mmjoin::ServiceError>(())
//! ```

pub use mmjoin_api::{
    Atom, CountSink, DeltaSink, Engine, EngineError, EngineRegistry, ExecStats, ForEachSink,
    LimitSink, PairSink, PlanKind, PlanStats, Query, QueryError, QueryFamily, QueryGraph, Sink,
    StepStats, Var, VecSink,
};
pub use mmjoin_core::{
    execute_general, plan_general, GeneralPlan, HeavyBackend, JoinConfig, MmJoinEngine, PlanError,
};
pub use mmjoin_executor::{Executor, ExecutorStats};
/// Observability: the process-global [`obs::Tracer`](mmjoin_obs::trace::Tracer)
/// span tracer and the named-metric registry (counters, gauges,
/// log-bucketed histograms).
pub use mmjoin_obs as obs;
pub use mmjoin_service::{
    default_registry, registry_with_config, AtomSpec, DeltaResult, MaintenancePolicy,
    MaintenanceReport, MetricsSnapshot, QuerySpec, RelationProfile, Request, Response,
    SelectionReason, Service, ServiceConfig, ServiceError, Ticket,
};
pub use mmjoin_storage::{NormalizedDelta, Relation, RelationBuilder, RelationDelta, Value};

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn default_registry_covers_all_families() {
        let registry = default_registry(1);
        let r = rel(&[(0, 0), (1, 0)]);
        let rels = vec![r.clone(), r.clone()];
        let queries = [
            Query::two_path(&r, &r).build().unwrap(),
            Query::star(&rels).build().unwrap(),
            Query::similarity(&r, 1).build().unwrap(),
            Query::containment(&r).build().unwrap(),
        ];
        for q in &queries {
            let engines = registry.engines_for(q);
            assert!(
                engines.len() >= 2,
                "{:?} should have multiple engines, got {:?}",
                q.family(),
                engines.iter().map(|e| e.name()).collect::<Vec<_>>()
            );
            assert_eq!(engines[0].name(), "MMJoin", "MMJoin leads every family");
        }
    }

    #[test]
    fn every_engine_answers_its_families_consistently() {
        let r = rel(&[(0, 0), (0, 1), (1, 0), (2, 1), (2, 0), (3, 2)]);
        let registry = default_registry(2);
        let q = Query::two_path(&r, &r).build().unwrap();
        let engines = registry.engines_for(&q);
        let mut reference: Option<Vec<(Value, Value)>> = None;
        for e in engines {
            let mut sink = PairSink::new();
            e.execute(&q, &mut sink).unwrap();
            match &reference {
                None => reference = Some(sink.pairs),
                Some(r0) => assert_eq!(&sink.pairs, r0, "{} disagrees", e.name()),
            }
        }
    }

    #[test]
    fn expected_names_present() {
        let registry = default_registry(1);
        for name in [
            "MMJoin",
            "Non-MMJoin",
            "WCOJ",
            "HashJoin(Postgres)",
            "MergeJoin(MySQL)",
            "SystemX",
            "SetIntersect(EmptyHeaded)",
            "HashJoin(DBMS)",
            "SortDedup(reference)",
            "SizeAware",
            "SizeAware++",
            "PRETTI",
            "LIMIT+",
            "PIEJoin",
        ] {
            assert!(registry.get(name).is_some(), "missing engine {name}");
        }
        assert_eq!(registry.len(), 14);
    }
}
