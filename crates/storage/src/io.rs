//! Loading and saving relations as text edge lists, with optional
//! dictionary encoding for string-keyed data.
//!
//! The paper's datasets arrive as whitespace-separated edge lists (SNAP
//! format and friends). [`read_edge_list`] parses those directly when the
//! keys are already integers; [`Dictionary`] handles real-world files whose
//! keys are strings (author names, tokens) by assigning dense `u32` ids in
//! first-seen order — the same encoding the algorithms assume.

use crate::{Relation, RelationBuilder, Value};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors raised by the text loaders.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line did not contain two fields.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A field failed to parse as `u32`.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::BadLine { line, content } => {
                write!(f, "line {line}: expected two fields, got {content:?}")
            }
            IoError::BadValue { line, field } => {
                write!(f, "line {line}: {field:?} is not a valid u32 id")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a whitespace- or comma-separated integer edge list. Lines starting
/// with `#` or `%` (SNAP / MatrixMarket comments) and blank lines are
/// skipped. Duplicate edges collapse during relation construction.
pub fn read_edge_list(reader: impl Read) -> Result<Relation, IoError> {
    let mut builder = RelationBuilder::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed.split(|c: char| c.is_whitespace() || c == ',');
        let mut next_field = || {
            fields.find(|f| !f.is_empty()).ok_or(IoError::BadLine {
                line: line_no,
                content: trimmed.to_string(),
            })
        };
        let x_raw = next_field()?;
        let y_raw = next_field()?;
        let x: Value = x_raw.parse().map_err(|_| IoError::BadValue {
            line: line_no,
            field: x_raw.to_string(),
        })?;
        let y: Value = y_raw.parse().map_err(|_| IoError::BadValue {
            line: line_no,
            field: y_raw.to_string(),
        })?;
        builder.push(x, y);
    }
    Ok(builder.build())
}

/// Writes a relation as a tab-separated edge list (round-trips through
/// [`read_edge_list`]).
pub fn write_edge_list(r: &Relation, mut writer: impl Write) -> std::io::Result<()> {
    for &(x, y) in r.edges() {
        writeln!(writer, "{x}\t{y}")?;
    }
    Ok(())
}

/// A first-seen-order string-to-id dictionary for loading string-keyed
/// edge lists.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    ids: HashMap<String, Value>,
    names: Vec<String>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id for `key`, allocating the next dense id on first sight.
    pub fn encode(&mut self, key: &str) -> Value {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = self.names.len() as Value;
        self.ids.insert(key.to_string(), id);
        self.names.push(key.to_string());
        id
    }

    /// Id for `key` if already present.
    pub fn lookup(&self, key: &str) -> Option<Value> {
        self.ids.get(key).copied()
    }

    /// Original string for `id`.
    pub fn decode(&self, id: Value) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct keys seen.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no key was encoded yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Reads a string-keyed edge list, building dictionaries for both columns.
/// Returns the relation plus the two dictionaries (x-column, y-column).
pub fn read_string_edge_list(
    reader: impl Read,
) -> Result<(Relation, Dictionary, Dictionary), IoError> {
    let mut xs = Dictionary::new();
    let mut ys = Dictionary::new();
    let mut builder = RelationBuilder::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|f| !f.is_empty());
        let (Some(a), Some(b)) = (fields.next(), fields.next()) else {
            return Err(IoError::BadLine {
                line: line_no,
                content: trimmed.to_string(),
            });
        };
        let x = xs.encode(a);
        let y = ys.encode(b);
        builder.push(x, y);
    }
    Ok((builder.build(), xs, ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_style_edges() {
        let input = "# comment\n0 1\n2\t3\n% another\n4,5\n\n";
        let r = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(r.edges(), &[(0, 1), (2, 3), (4, 5)]);
    }

    #[test]
    fn rejects_short_lines() {
        let err = read_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::BadLine { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_non_integer_fields() {
        let err = read_edge_list("1 banana\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::BadValue { line: 1, .. }), "{err}");
    }

    #[test]
    fn round_trips_through_write() {
        let r = Relation::from_edges([(9, 1), (0, 4), (9, 1), (3, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&r, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(back.edges(), r.edges());
    }

    #[test]
    fn dictionary_dense_first_seen() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode("alice"), 0);
        assert_eq!(d.encode("bob"), 1);
        assert_eq!(d.encode("alice"), 0);
        assert_eq!(d.decode(1), Some("bob"));
        assert_eq!(d.lookup("carol"), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn string_edge_list_encodes_columns_independently() {
        let input = "alice paper1\nbob paper1\nalice paper2\n";
        let (r, authors, papers) = read_string_edge_list(input.as_bytes()).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(authors.len(), 2);
        assert_eq!(papers.len(), 2);
        assert_eq!(r.xs_of(papers.lookup("paper1").unwrap()), &[0, 1]);
    }

    #[test]
    fn empty_input_gives_empty_relation() {
        let r = read_edge_list("".as_bytes()).unwrap();
        assert!(r.is_empty());
        let (r, a, b) = read_string_edge_list("# only comments\n".as_bytes()).unwrap();
        assert!(r.is_empty());
        assert!(a.is_empty());
        assert!(b.is_empty());
    }
}
