//! Compressed-sparse-row adjacency index with sorted neighbor lists.

use crate::Value;

/// A CSR (compressed sparse row) index mapping each key in a dense domain
/// `0..num_keys` to a sorted slice of neighbor values.
///
/// For a relation `R(x, y)` we build one `CsrIndex` keyed by `x` (neighbors
/// are `y` values) and one keyed by `y` (neighbors are `x` values). Sorted
/// neighbor lists make merge-style and galloping set intersections possible,
/// which both the worst-case-optimal join and the EmptyHeaded-style baseline
/// rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrIndex {
    /// `offsets[k]..offsets[k+1]` delimits the neighbors of key `k`.
    offsets: Vec<usize>,
    /// Concatenated, per-key-sorted neighbor lists.
    neighbors: Vec<Value>,
}

impl CsrIndex {
    /// Builds a CSR index from unsorted `(key, neighbor)` pairs.
    ///
    /// Duplicate pairs are collapsed. `num_keys` must be at least
    /// `max(key) + 1`; passing a larger domain is allowed and yields empty
    /// rows for the unused keys.
    ///
    /// Runs in `O(E log E)` due to the sort (the paper's `O(|D| log |D|)`
    /// preprocessing budget).
    ///
    /// # Panics
    /// Panics if any key is `>= num_keys`.
    pub fn from_pairs(num_keys: usize, pairs: &[(Value, Value)]) -> Self {
        let mut counts = vec![0usize; num_keys + 1];
        for &(k, _) in pairs {
            assert!(
                (k as usize) < num_keys,
                "key {k} out of bounds for domain of size {num_keys}"
            );
            counts[k as usize + 1] += 1;
        }
        for i in 0..num_keys {
            counts[i + 1] += counts[i];
        }
        let mut neighbors = vec![0 as Value; pairs.len()];
        let mut cursor = counts.clone();
        for &(k, v) in pairs {
            let slot = cursor[k as usize];
            neighbors[slot] = v;
            cursor[k as usize] += 1;
        }
        // Sort and dedup each row in place.
        let mut offsets = vec![0usize; num_keys + 1];
        let mut write = 0usize;
        for k in 0..num_keys {
            let (start, end) = (counts[k], counts[k + 1]);
            let row = &mut neighbors[start..end];
            row.sort_unstable();
            // Dedup the row while compacting the whole buffer.
            let row_start_write = write;
            let mut prev: Option<Value> = None;
            for i in start..end {
                let v = neighbors[i];
                if prev != Some(v) {
                    neighbors[write] = v;
                    write += 1;
                    prev = Some(v);
                }
            }
            offsets[k] = row_start_write;
        }
        offsets[num_keys] = write;
        // `offsets[k]` currently stores row starts; convert into standard
        // prefix form (start of row k == offsets[k], end == offsets[k+1]).
        neighbors.truncate(write);
        Self { offsets, neighbors }
    }

    /// Number of keys in the (dense) domain.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored (deduplicated) pairs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// The sorted neighbor list of `key`.
    #[inline]
    pub fn neighbors(&self, key: Value) -> &[Value] {
        let k = key as usize;
        &self.neighbors[self.offsets[k]..self.offsets[k + 1]]
    }

    /// Degree (neighbor count) of `key`.
    #[inline]
    pub fn degree(&self, key: Value) -> usize {
        let k = key as usize;
        self.offsets[k + 1] - self.offsets[k]
    }

    /// Iterator over `(key, neighbors)` for all keys with non-empty rows.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (Value, &[Value])> + '_ {
        (0..self.num_keys()).filter_map(move |k| {
            let row = self.neighbors(k as Value);
            (!row.is_empty()).then_some((k as Value, row))
        })
    }

    /// Iterator over all keys in the domain (including empty rows).
    pub fn iter_all(&self) -> impl Iterator<Item = (Value, &[Value])> + '_ {
        (0..self.num_keys()).map(move |k| (k as Value, self.neighbors(k as Value)))
    }

    /// True if `(key, value)` is present, via binary search on the row.
    #[inline]
    pub fn contains(&self, key: Value, value: Value) -> bool {
        self.neighbors(key).binary_search(&value).is_ok()
    }

    /// Flat access to the neighbor buffer (used by zero-copy matrix packing).
    #[inline]
    pub fn raw_neighbors(&self) -> &[Value] {
        &self.neighbors
    }

    /// Flat access to the offsets buffer.
    #[inline]
    pub fn raw_offsets(&self) -> &[usize] {
        &self.offsets
    }
}

/// Size of the intersection of two sorted slices, by linear merge.
///
/// Used by verification steps (SCJ) and the EmptyHeaded-style baseline when
/// the two lists have comparable lengths.
pub fn intersect_count(a: &[Value], b: &[Value]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Size of the intersection of two sorted slices using galloping search from
/// the shorter into the longer. `O(|short| log |long|)` — the winning
/// strategy when lengths are very skewed (EmptyHeaded's key trick).
pub fn gallop_intersect_count(short: &[Value], long: &[Value]) -> usize {
    if short.len() > long.len() {
        return gallop_intersect_count(long, short);
    }
    let mut n = 0usize;
    let mut base = 0usize;
    for &v in short {
        // Doubling probe: find a window [base, base + hi] known to contain
        // the first element >= v (or run off the end).
        let mut hi = 1usize;
        while base + hi < long.len() && long[base + hi] < v {
            hi *= 2;
        }
        let end = (base + hi + 1).min(long.len());
        match long[base..end].binary_search(&v) {
            Ok(pos) => {
                n += 1;
                base += pos + 1;
            }
            Err(pos) => base += pos,
        }
        if base >= long.len() {
            break;
        }
    }
    n
}

/// Adaptive intersection count: picks merge or galloping based on the length
/// ratio (factor 16 is the usual crossover used by set-intersection engines).
pub fn adaptive_intersect_count(a: &[Value], b: &[Value]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() / (short.len().max(1)) >= 16 {
        gallop_intersect_count(short, long)
    } else {
        intersect_count(short, long)
    }
}

/// Writes the intersection of two sorted slices into `out`, returning the
/// number of elements written. `out` is cleared first.
pub fn intersect_into(a: &[Value], b: &[Value], out: &mut Vec<Value>) -> usize {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.len()
}

/// True iff sorted slice `sub` is a subset of sorted slice `sup`.
pub fn is_subset(sub: &[Value], sup: &[Value]) -> bool {
    if sub.len() > sup.len() {
        return false;
    }
    let mut j = 0usize;
    for &v in sub {
        while j < sup.len() && sup[j] < v {
            j += 1;
        }
        if j >= sup.len() || sup[j] != v {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_rows() {
        let idx = CsrIndex::from_pairs(4, &[(2, 5), (0, 3), (2, 1), (0, 7), (2, 9)]);
        assert_eq!(idx.neighbors(0), &[3, 7]);
        assert_eq!(idx.neighbors(1), &[] as &[Value]);
        assert_eq!(idx.neighbors(2), &[1, 5, 9]);
        assert_eq!(idx.neighbors(3), &[] as &[Value]);
        assert_eq!(idx.num_edges(), 5);
    }

    #[test]
    fn dedups_pairs() {
        let idx = CsrIndex::from_pairs(2, &[(0, 1), (0, 1), (1, 0), (0, 1)]);
        assert_eq!(idx.neighbors(0), &[1]);
        assert_eq!(idx.neighbors(1), &[0]);
        assert_eq!(idx.num_edges(), 2);
    }

    #[test]
    fn degree_and_contains() {
        let idx = CsrIndex::from_pairs(3, &[(1, 4), (1, 2), (1, 8)]);
        assert_eq!(idx.degree(1), 3);
        assert_eq!(idx.degree(0), 0);
        assert!(idx.contains(1, 4));
        assert!(!idx.contains(1, 5));
        assert!(!idx.contains(0, 4));
    }

    #[test]
    fn empty_index() {
        let idx = CsrIndex::from_pairs(0, &[]);
        assert_eq!(idx.num_keys(), 0);
        assert_eq!(idx.num_edges(), 0);
        assert_eq!(idx.iter_nonempty().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_domain_keys() {
        let _ = CsrIndex::from_pairs(2, &[(2, 0)]);
    }

    #[test]
    fn iter_nonempty_skips_empty_rows() {
        let idx = CsrIndex::from_pairs(5, &[(0, 1), (4, 2)]);
        let keys: Vec<Value> = idx.iter_nonempty().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![0, 4]);
    }

    #[test]
    fn intersections_agree() {
        let a: Vec<Value> = vec![1, 3, 5, 7, 9, 11, 13];
        let b: Vec<Value> = vec![2, 3, 5, 8, 13, 21];
        assert_eq!(intersect_count(&a, &b), 3);
        assert_eq!(gallop_intersect_count(&a, &b), 3);
        assert_eq!(adaptive_intersect_count(&a, &b), 3);
        let mut out = Vec::new();
        assert_eq!(intersect_into(&a, &b, &mut out), 3);
        assert_eq!(out, vec![3, 5, 13]);
    }

    #[test]
    fn gallop_handles_extreme_skew() {
        let short: Vec<Value> = vec![500, 999];
        let long: Vec<Value> = (0..1000).collect();
        assert_eq!(gallop_intersect_count(&short, &long), 2);
        assert_eq!(gallop_intersect_count(&long, &short), 2);
    }

    #[test]
    fn gallop_empty_inputs() {
        assert_eq!(gallop_intersect_count(&[], &[1, 2, 3]), 0);
        assert_eq!(gallop_intersect_count(&[1, 2, 3], &[]), 0);
        assert_eq!(intersect_count(&[], &[]), 0);
    }

    #[test]
    fn subset_checks() {
        assert!(is_subset(&[2, 4], &[1, 2, 3, 4, 5]));
        assert!(!is_subset(&[2, 6], &[1, 2, 3, 4, 5]));
        assert!(is_subset(&[], &[1]));
        assert!(is_subset(&[], &[]));
        assert!(!is_subset(&[1], &[]));
        assert!(is_subset(&[1, 2, 3], &[1, 2, 3]));
    }
}
