//! Epoch-stamped dense deduplication scratch buffer.
//!
//! §6 of the paper deduplicates light-part output with a dense
//! `std::vector<int> dedup(N)` that is `assign(N, 0)`-cleared for every new
//! `x` group. We keep the same O(1) random-access counting but replace the
//! O(N) clear with an epoch counter: bumping the epoch invalidates every slot
//! at once, so a group whose output is tiny pays nothing for the reset.
//!
//! The buffer also supports the paper's *alternative* strategy — append all
//! reachable values then sort-dedup — via [`DedupBuffer::sort_strategy_threshold`],
//! letting callers pick whichever is cheaper for the group at hand (§6: "we
//! choose the best of the two strategies").

use crate::Value;

/// Dense counting set over the domain `0..n` with O(1) insert/lookup and
/// O(1) clear (epoch bump).
#[derive(Debug, Clone)]
pub struct DedupBuffer {
    /// Epoch at which each slot was last written.
    stamp: Vec<u32>,
    /// Multiplicity of each member in the current epoch.
    count: Vec<u32>,
    /// Current epoch; slots with `stamp != epoch` are absent.
    epoch: u32,
}

impl DedupBuffer {
    /// Creates a buffer over the dense domain `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            stamp: vec![0; n],
            count: vec![0; n],
            epoch: 1,
        }
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.stamp.len()
    }

    /// Clears the set in O(1) by bumping the epoch. On (rare) epoch wrap the
    /// stamps are hard-reset.
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Inserts `v`, returning `true` iff it was *not* already present
    /// (i.e. this call discovered a fresh distinct value).
    #[inline]
    pub fn insert(&mut self, v: Value) -> bool {
        let i = v as usize;
        if self.stamp[i] == self.epoch {
            self.count[i] += 1;
            false
        } else {
            self.stamp[i] = self.epoch;
            self.count[i] = 1;
            true
        }
    }

    /// True if `v` is present in the current epoch.
    #[inline]
    pub fn contains(&self, v: Value) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    /// Multiplicity of `v` in the current epoch (0 if absent).
    #[inline]
    pub fn multiplicity(&self, v: Value) -> u32 {
        let i = v as usize;
        if self.stamp[i] == self.epoch {
            self.count[i]
        } else {
            0
        }
    }

    /// Heuristic from §6: when the expected number of insertions for a group
    /// is below this fraction of the domain, the sort-based strategy tends to
    /// beat random access (cache effects). Callers compare their workload
    /// estimate against `domain() / 8`.
    pub fn sort_strategy_threshold(&self) -> usize {
        self.domain() / 8
    }
}

/// Sort-based deduplication (the §6 alternative): sorts `buf` and removes
/// duplicates in place, returning the number of distinct values.
pub fn sort_dedup(buf: &mut Vec<Value>) -> usize {
    buf.sort_unstable();
    buf.dedup();
    buf.len()
}

/// Sort-based dedup that also reports multiplicities `(value, count)`,
/// used by the similarity joins that need intersection sizes.
pub fn sort_dedup_counts(buf: &mut [Value]) -> Vec<(Value, u32)> {
    buf.sort_unstable();
    let mut out: Vec<(Value, u32)> = Vec::new();
    for &v in buf.iter() {
        match out.last_mut() {
            Some((last, c)) if *last == v => *c += 1,
            _ => out.push((v, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut d = DedupBuffer::new(10);
        assert!(d.insert(3));
        assert!(!d.insert(3));
        assert!(d.contains(3));
        assert!(!d.contains(4));
        assert_eq!(d.multiplicity(3), 2);
        assert_eq!(d.multiplicity(4), 0);
    }

    #[test]
    fn clear_is_constant_time_epoch_bump() {
        let mut d = DedupBuffer::new(4);
        d.insert(0);
        d.insert(1);
        d.clear();
        assert!(!d.contains(0));
        assert!(!d.contains(1));
        assert!(d.insert(0));
        assert_eq!(d.multiplicity(0), 1);
    }

    #[test]
    fn epoch_wrap_resets() {
        let mut d = DedupBuffer::new(2);
        d.epoch = u32::MAX - 1;
        d.insert(0);
        d.clear(); // -> MAX
        assert!(!d.contains(0));
        d.insert(1);
        d.clear(); // wrap: hard reset
        assert!(!d.contains(1));
        assert!(d.insert(1));
    }

    #[test]
    fn sort_dedup_basic() {
        let mut v = vec![5, 1, 5, 2, 1, 5];
        assert_eq!(sort_dedup(&mut v), 3);
        assert_eq!(v, vec![1, 2, 5]);
    }

    #[test]
    fn sort_dedup_counts_basic() {
        let mut v = vec![5, 1, 5, 2, 1, 5];
        let c = sort_dedup_counts(&mut v);
        assert_eq!(c, vec![(1, 2), (2, 1), (5, 3)]);
    }

    #[test]
    fn sort_dedup_empty() {
        let mut v: Vec<Value> = vec![];
        assert_eq!(sort_dedup(&mut v), 0);
        assert!(sort_dedup_counts(&mut v).is_empty());
    }
}
