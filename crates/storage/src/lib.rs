//! Relation storage for the `mmjoin` workspace.
//!
//! This crate implements the storage substrate assumed by the paper
//! *Fast Join Project Query Evaluation using Matrix Multiplication*
//! (Deep, Hu, Koutris — SIGMOD 2020):
//!
//! * [`Relation`] — an immutable binary relation `R(x, y)` stored as a
//!   deduplicated, sorted edge list together with CSR adjacency indexes in
//!   *both* directions (`x → [y]` and `y → [x]`). This is the paper's
//!   requirement (§5, "Indexing relations") that every relation be stored
//!   once per index order with sorted neighbor lists.
//! * [`CsrIndex`] — the compressed-sparse-row index itself, usable standalone.
//! * [`stats`] — the degree-threshold indexes `sum(xδ)`, `sum(yδ)`,
//!   `cdfx(yδ)` and `count(wδ)` that the cost-based optimizer (Algorithm 3)
//!   queries by binary search.
//! * [`dedup`] — the epoch-stamped dense deduplication scratch buffer used by
//!   all light-part join implementations (§6's `dedup` vector, improved with
//!   epoch counters so it never needs an O(N) clear between groups).
//! * [`delta`] — the mutable data path: batched [`RelationDelta`]
//!   inserts/deletes, normalized against a base relation and applied via a
//!   merge-or-rebuild compaction producing a fresh indexed [`Relation`].
//!
//! Values are dense `u32` identifiers ([`Value`]); dictionary encoding is the
//! responsibility of loaders/generators (`mmjoin-datagen`).

pub mod csr;
pub mod dedup;
pub mod delta;
pub mod io;
pub mod relation;
pub mod stats;

pub use csr::CsrIndex;
pub use dedup::DedupBuffer;
pub use delta::{NormalizedDelta, RelationDelta};
pub use relation::{Relation, RelationBuilder};
pub use stats::{DegreeHistogram, ThresholdIndexes};

/// A dictionary-encoded attribute value. All algorithms in this workspace
/// operate over dense `u32` id spaces, exactly like the paper's C++
/// prototype.
pub type Value = u32;

/// A tuple of the binary relation `R(x, y)`.
pub type Edge = (Value, Value);
