//! Degree statistics and the threshold indexes of §5.
//!
//! Algorithm 3 (the cost-based optimizer) repeatedly asks, for a candidate
//! degree threshold δ:
//!
//! * `count(wδ)` — how many values of variable `w` have degree ≤ δ (and its
//!   complement, how many are *heavy*);
//! * `sum(yδ)`  — the light-`y` expansion effort `Σ_{deg(b) ≤ δ} |L[b]|²`;
//! * `sum(xδ)`  — the light-`x` expansion effort
//!   `Σ_{deg(a) ≤ δ} Σ_{b : (a,b) ∈ R} |L[b]|`;
//! * `cdfx(yδ)` — the number of `(x, y)` tuples whose `y` has degree ≤ δ
//!   (equivalently, how many x-slots participate in light-`y` expansion).
//!
//! All of these are answered in `O(log N)` by binary searching a per-variable
//! histogram sorted by degree, after linear-time construction — exactly the
//! "sorted vector containing the true distribution of values" of §5.

use crate::csr::CsrIndex;
use crate::relation::Relation;
use crate::Value;

/// A histogram of per-value degrees sorted ascending, with prefix sums of
/// several per-value metrics, supporting O(log N) threshold queries.
#[derive(Debug, Clone)]
pub struct DegreeHistogram {
    /// Degrees of all *active* (degree ≥ 1) values, ascending.
    degrees: Vec<u32>,
    /// Prefix sums of `degree` aligned with `degrees` (`prefix_deg[i]` =
    /// sum of the first `i` degrees).
    prefix_deg: Vec<u64>,
    /// Prefix sums of `metric` (see constructor) aligned with `degrees`.
    prefix_metric: Vec<u64>,
}

impl DegreeHistogram {
    /// Builds a histogram over all active keys of `idx`. `metric(key)` is an
    /// arbitrary per-key weight accumulated in `prefix_metric` (pass degree²
    /// for `sum(yδ)`, the L-weighted sum for `sum(xδ)`, etc.).
    pub fn build(idx: &CsrIndex, mut metric: impl FnMut(Value) -> u64) -> Self {
        let mut entries: Vec<(u32, u64)> = idx
            .iter_nonempty()
            .map(|(k, row)| (row.len() as u32, metric(k)))
            .collect();
        entries.sort_unstable_by_key(|&(d, _)| d);
        let mut degrees = Vec::with_capacity(entries.len());
        let mut prefix_deg = Vec::with_capacity(entries.len() + 1);
        let mut prefix_metric = Vec::with_capacity(entries.len() + 1);
        prefix_deg.push(0);
        prefix_metric.push(0);
        let (mut dsum, mut msum) = (0u64, 0u64);
        for (d, m) in entries {
            degrees.push(d);
            dsum += d as u64;
            msum += m;
            prefix_deg.push(dsum);
            prefix_metric.push(msum);
        }
        Self {
            degrees,
            prefix_deg,
            prefix_metric,
        }
    }

    /// Number of active values.
    pub fn active(&self) -> usize {
        self.degrees.len()
    }

    /// Index of the first value with degree > δ (== number of light values).
    fn partition_point(&self, delta: u32) -> usize {
        self.degrees.partition_point(|&d| d <= delta)
    }

    /// `count(wδ)`: number of active values with degree ≤ δ.
    pub fn count_le(&self, delta: u32) -> usize {
        self.partition_point(delta)
    }

    /// Number of active values with degree > δ (the heavy count).
    pub fn count_gt(&self, delta: u32) -> usize {
        self.active() - self.partition_point(delta)
    }

    /// Total degree mass (tuple count) of values with degree ≤ δ.
    pub fn degree_sum_le(&self, delta: u32) -> u64 {
        self.prefix_deg[self.partition_point(delta)]
    }

    /// Total degree mass of heavy values (degree > δ).
    pub fn degree_sum_gt(&self, delta: u32) -> u64 {
        *self.prefix_deg.last().unwrap() - self.degree_sum_le(delta)
    }

    /// Accumulated metric of values with degree ≤ δ.
    pub fn metric_sum_le(&self, delta: u32) -> u64 {
        self.prefix_metric[self.partition_point(delta)]
    }

    /// Accumulated metric over all active values.
    pub fn metric_total(&self) -> u64 {
        *self.prefix_metric.last().unwrap()
    }

    /// Largest degree present, or 0 when empty.
    pub fn max_degree(&self) -> u32 {
        self.degrees.last().copied().unwrap_or(0)
    }
}

/// The full set of §5 threshold indexes for the 2-path query
/// `R(x, y) ⋈ S(z, y)` (for a self join pass the same relation twice).
///
/// `x` statistics are taken over `R`, `z` statistics over `S`, and `y`
/// statistics over the join column with `L[b]` denoting the inverted list of
/// `b` in `S` (so `sum_x` measures the cost of expanding light `x ∈ R`
/// through `S`'s inverted lists, matching the code snippet in §6).
#[derive(Debug, Clone)]
pub struct ThresholdIndexes {
    /// Histogram of `x` degrees in `R`; metric = Σ_{b∈ys(a)} |L_S[b]|
    /// (expansion effort of that `x`), giving `sum(xδ)`.
    pub x: DegreeHistogram,
    /// Histogram of `z` degrees in `S`; metric = Σ_{b∈ys(c)} |L_R[b]|.
    pub z: DegreeHistogram,
    /// Histogram of `y` degrees in `S` over y active in both relations;
    /// metric = |L_R[b]|·|L_S[b]| (join pairs through b), giving `sum(yδ)`
    /// and, through `degree`-style sums, `cdfx(yδ)`.
    pub y: DegreeHistogram,
    /// Histogram of `y` degrees in `R` (metric = |L_R[b]|²), used when the
    /// light-y split thresholds R-side degrees.
    pub y_r: DegreeHistogram,
}

impl ThresholdIndexes {
    /// Builds all indexes in `O(N log N)`.
    pub fn build(r: &Relation, s: &Relation) -> Self {
        let x = DegreeHistogram::build(r.by_x(), |a| {
            r.ys_of(a)
                .iter()
                .map(|&b| {
                    if (b as usize) < s.y_domain() {
                        s.y_degree(b) as u64
                    } else {
                        0
                    }
                })
                .sum()
        });
        let z = DegreeHistogram::build(s.by_x(), |c| {
            s.ys_of(c)
                .iter()
                .map(|&b| {
                    if (b as usize) < r.y_domain() {
                        r.y_degree(b) as u64
                    } else {
                        0
                    }
                })
                .sum()
        });
        let y = DegreeHistogram::build(s.by_y(), |b| {
            let rdeg = if (b as usize) < r.y_domain() {
                r.y_degree(b) as u64
            } else {
                0
            };
            rdeg * s.y_degree(b) as u64
        });
        let y_r = DegreeHistogram::build(r.by_y(), |b| {
            let d = r.y_degree(b) as u64;
            d * d
        });
        Self { x, z, y, y_r }
    }

    /// `sum(yδ)` — expansion effort of all light `y` (join pairs through
    /// light `y` values, counted on the S side).
    pub fn sum_y(&self, delta: u32) -> u64 {
        self.y.metric_sum_le(delta)
    }

    /// `sum(xδ)` — deduplication effort for light `x` values.
    pub fn sum_x(&self, delta: u32) -> u64 {
        self.x.metric_sum_le(delta)
    }

    /// `cdfx(yδ)` — number of S-tuples whose `y` has degree ≤ δ.
    pub fn cdfx_y(&self, delta: u32) -> u64 {
        self.y.degree_sum_le(delta)
    }

    /// `count` of heavy x/z/y values for matrix sizing.
    pub fn heavy_counts(&self, delta1: u32, delta2: u32) -> (usize, usize, usize) {
        (
            self.x.count_gt(delta2),
            self.y.count_gt(delta1),
            self.z.count_gt(delta2),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn histogram_counts_and_sums() {
        // degrees: x0 -> 3, x1 -> 1, x2 -> 2
        let r = rel(&[(0, 0), (0, 1), (0, 2), (1, 0), (2, 1), (2, 2)]);
        let h = DegreeHistogram::build(r.by_x(), |_| 1);
        assert_eq!(h.active(), 3);
        assert_eq!(h.count_le(0), 0);
        assert_eq!(h.count_le(1), 1);
        assert_eq!(h.count_le(2), 2);
        assert_eq!(h.count_le(3), 3);
        assert_eq!(h.count_gt(1), 2);
        assert_eq!(h.degree_sum_le(2), 3); // 1 + 2
        assert_eq!(h.degree_sum_gt(2), 3); // the degree-3 value
        assert_eq!(h.metric_sum_le(3), 3); // unit metric counts values
        assert_eq!(h.max_degree(), 3);
    }

    #[test]
    fn histogram_empty() {
        let r = rel(&[]);
        let h = DegreeHistogram::build(r.by_x(), |_| 1);
        assert_eq!(h.active(), 0);
        assert_eq!(h.count_le(10), 0);
        assert_eq!(h.max_degree(), 0);
        assert_eq!(h.metric_total(), 0);
    }

    #[test]
    fn threshold_indexes_self_join() {
        // Star instance: y=0 shared by x {0,1}; y=1 only x {2}.
        let r = rel(&[(0, 0), (1, 0), (2, 1)]);
        let t = ThresholdIndexes::build(&r, &r);
        // sum_y(δ=1): only y=1 is light (deg 1); pairs through it = 1*1.
        assert_eq!(t.sum_y(1), 1);
        // sum_y(δ=2): both light; y=0 contributes 2*2 = 4.
        assert_eq!(t.sum_y(2), 5);
        // cdfx(yδ=1) = tuples with light y = 1.
        assert_eq!(t.cdfx_y(1), 1);
        assert_eq!(t.cdfx_y(2), 3);
        // sum_x(δ=1): all x have degree 1 -> all light. Expansion effort:
        // x0 via y0 -> |L[0]|=2; x1 via y0 -> 2; x2 via y1 -> 1. total 5.
        assert_eq!(t.sum_x(1), 5);
        // heavy counts at Δ1=1 (y heavy if deg>1), Δ2=1.
        let (hx, hy, hz) = t.heavy_counts(1, 1);
        assert_eq!((hx, hy, hz), (0, 1, 0));
    }

    #[test]
    fn threshold_indexes_cross_join() {
        let r = rel(&[(0, 0), (1, 0)]);
        let s = rel(&[(7, 0), (8, 0), (9, 0)]);
        let t = ThresholdIndexes::build(&r, &s);
        // y=0: deg_R=2, deg_S=3 -> metric 6 at δ≥3.
        assert_eq!(t.sum_y(3), 6);
        assert_eq!(t.sum_y(2), 0);
        // sum_x at δ≥1: each of x0,x1 expands through L_S[0] of size 3.
        assert_eq!(t.sum_x(1), 6);
        // z histogram: z∈{7,8,9} deg 1 each, expanding through L_R[0]=2.
        assert_eq!(t.z.metric_sum_le(1), 6);
    }
}
