//! Binary relations with two-directional CSR indexes.

use crate::csr::CsrIndex;
use crate::{Edge, Value};

/// An immutable binary relation `R(x, y)`, fully indexed.
///
/// Construction deduplicates tuples and builds two CSR indexes (`x → [y]`
/// and `y → [x]`) with sorted neighbor lists, satisfying the paper's §5
/// requirement that relations be "indexed over the variables" before any
/// worst-case-optimal join runs. All per-value degree lookups are O(1).
#[derive(Debug, Clone)]
pub struct Relation {
    /// Deduplicated tuples, sorted by `(x, y)`.
    edges: Vec<Edge>,
    /// `x → sorted [y]`.
    by_x: CsrIndex,
    /// `y → sorted [x]`.
    by_y: CsrIndex,
}

impl Relation {
    /// Builds a relation from an arbitrary tuple list.
    ///
    /// The domain sizes are inferred as `max + 1` over each column. For an
    /// explicitly sized domain use [`RelationBuilder`].
    ///
    /// ```
    /// use mmjoin_storage::Relation;
    /// let r = Relation::from_edges([(0, 5), (0, 7), (1, 5), (0, 5)]);
    /// assert_eq!(r.len(), 3);              // duplicates collapse
    /// assert_eq!(r.ys_of(0), &[5, 7]);     // sorted adjacency
    /// assert_eq!(r.xs_of(5), &[0, 1]);     // inverted list
    /// ```
    pub fn from_edges(edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut b = RelationBuilder::new();
        for e in edges {
            b.push(e.0, e.1);
        }
        b.build()
    }

    pub(crate) fn from_parts(edges: Vec<Edge>, by_x: CsrIndex, by_y: CsrIndex) -> Self {
        Self { edges, by_x, by_y }
    }

    /// Number of tuples `N` (after deduplication).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the relation has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The deduplicated tuples, sorted by `(x, y)`.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Size of the dense `x` domain (`max x + 1`, or the explicit domain).
    #[inline]
    pub fn x_domain(&self) -> usize {
        self.by_x.num_keys()
    }

    /// Size of the dense `y` domain.
    #[inline]
    pub fn y_domain(&self) -> usize {
        self.by_y.num_keys()
    }

    /// CSR index `x → sorted [y]`.
    #[inline]
    pub fn by_x(&self) -> &CsrIndex {
        &self.by_x
    }

    /// CSR index `y → sorted [x]`.
    #[inline]
    pub fn by_y(&self) -> &CsrIndex {
        &self.by_y
    }

    /// Sorted `y`-neighbors of `x = a` (the set `π_y σ_{x=a} R`).
    #[inline]
    pub fn ys_of(&self, x: Value) -> &[Value] {
        self.by_x.neighbors(x)
    }

    /// Sorted `x`-neighbors of `y = b` (the inverted list `L[b]`).
    #[inline]
    pub fn xs_of(&self, y: Value) -> &[Value] {
        self.by_y.neighbors(y)
    }

    /// Degree of an `x` value.
    #[inline]
    pub fn x_degree(&self, x: Value) -> usize {
        self.by_x.degree(x)
    }

    /// Degree of a `y` value (length of inverted list `L[b]`).
    #[inline]
    pub fn y_degree(&self, y: Value) -> usize {
        self.by_y.degree(y)
    }

    /// Membership test via binary search.
    #[inline]
    pub fn contains(&self, x: Value, y: Value) -> bool {
        self.by_x.contains(x, y)
    }

    /// Number of distinct `x` values that occur in at least one tuple.
    pub fn active_x_count(&self) -> usize {
        self.by_x.iter_nonempty().count()
    }

    /// Number of distinct `y` values that occur in at least one tuple.
    pub fn active_y_count(&self) -> usize {
        self.by_y.iter_nonempty().count()
    }

    /// The size of the *full join* `R(x,y) ⋈ S(z,y)` before projection:
    /// `Σ_y deg_R(y) · deg_S(y)`. Computed in one linear pass — the paper
    /// notes this is computable during the indexing pass (§5).
    pub fn full_join_size(&self, other: &Relation) -> u64 {
        let dom = self.y_domain().min(other.y_domain());
        let mut total = 0u64;
        for y in 0..dom as Value {
            total += self.y_degree(y) as u64 * other.y_degree(y) as u64;
        }
        total
    }

    /// The same relation with its columns swapped: `Rᵀ(y, x) = R(x, y)`.
    ///
    /// O(N) with no re-sorting or re-indexing — the transposed edge list
    /// falls out of the `y → [x]` index in sorted order, and the two CSR
    /// indexes simply trade places.
    pub fn transposed(&self) -> Relation {
        let mut edges = Vec::with_capacity(self.len());
        for (y, xs) in self.by_y.iter_nonempty() {
            for &x in xs {
                edges.push((y, x));
            }
        }
        Relation::from_parts(edges, self.by_y.clone(), self.by_x.clone())
    }

    /// Semi-join reduction for the 2-path query `R(x,y) ⋈ S(z,y)`: returns
    /// `(R', S')` where dangling tuples (whose `y` has no partner on the
    /// other side) are removed. The paper assumes this linear-time
    /// preprocessing before Algorithm 1 runs.
    pub fn reduce_pair(r: &Relation, s: &Relation) -> (Relation, Relation) {
        let r_edges: Vec<Edge> = r
            .edges
            .iter()
            .copied()
            .filter(|&(_, y)| (y as usize) < s.y_domain() && s.y_degree(y) > 0)
            .collect();
        let s_edges: Vec<Edge> = s
            .edges
            .iter()
            .copied()
            .filter(|&(_, y)| (y as usize) < r.y_domain() && r.y_degree(y) > 0)
            .collect();
        let mut rb = RelationBuilder::with_domains(r.x_domain(), r.y_domain());
        for (x, y) in r_edges {
            rb.push(x, y);
        }
        let mut sb = RelationBuilder::with_domains(s.x_domain(), s.y_domain());
        for (x, y) in s_edges {
            sb.push(x, y);
        }
        (rb.build(), sb.build())
    }

    /// Semi-join reduction for a star query over `k` relations joined on `y`:
    /// keeps only tuples whose `y` appears in *every* relation.
    ///
    /// Generic over owned (`&[Relation]`) and borrowed (`&[&Relation]`)
    /// slices so callers holding `Arc<Relation>` handles never clone.
    pub fn reduce_star<R: AsRef<Relation>>(relations: &[R]) -> Vec<Relation> {
        assert!(!relations.is_empty());
        let dom = relations
            .iter()
            .map(|r| r.as_ref().y_domain())
            .min()
            .unwrap_or(0);
        let mut alive = vec![true; dom];
        for r in relations {
            for (y, live) in alive.iter_mut().enumerate() {
                if r.as_ref().y_degree(y as Value) == 0 {
                    *live = false;
                }
            }
        }
        relations
            .iter()
            .map(|r| {
                let r = r.as_ref();
                let mut b = RelationBuilder::with_domains(r.x_domain(), r.y_domain());
                for &(x, y) in r.edges() {
                    if (y as usize) < dom && alive[y as usize] {
                        b.push(x, y);
                    }
                }
                b.build()
            })
            .collect()
    }
}

impl AsRef<Relation> for Relation {
    fn as_ref(&self) -> &Relation {
        self
    }
}

/// Incremental builder for [`Relation`].
#[derive(Debug, Default, Clone)]
pub struct RelationBuilder {
    edges: Vec<Edge>,
    x_domain: usize,
    y_domain: usize,
    explicit_domains: bool,
}

impl RelationBuilder {
    /// A builder whose domains are inferred from the pushed tuples.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder with explicit dense domain sizes; pushed tuples may not
    /// exceed them.
    pub fn with_domains(x_domain: usize, y_domain: usize) -> Self {
        Self {
            edges: Vec::new(),
            x_domain,
            y_domain,
            explicit_domains: true,
        }
    }

    /// Pre-allocates capacity for `n` tuples.
    pub fn with_capacity(mut self, n: usize) -> Self {
        self.edges.reserve(n);
        self
    }

    /// Adds tuple `(x, y)`.
    ///
    /// # Panics
    /// With explicit domains, panics if a value falls outside them.
    pub fn push(&mut self, x: Value, y: Value) {
        if self.explicit_domains {
            assert!(
                (x as usize) < self.x_domain && (y as usize) < self.y_domain,
                "tuple ({x}, {y}) outside explicit domains ({}, {})",
                self.x_domain,
                self.y_domain
            );
        } else {
            self.x_domain = self.x_domain.max(x as usize + 1);
            self.y_domain = self.y_domain.max(y as usize + 1);
        }
        self.edges.push((x, y));
    }

    /// Number of tuples pushed so far (before deduplication).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no tuples were pushed.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalizes: sorts, deduplicates, and builds both CSR indexes.
    pub fn build(mut self) -> Relation {
        self.edges.sort_unstable();
        self.edges.dedup();
        let by_x = CsrIndex::from_pairs(self.x_domain, &self.edges);
        let swapped: Vec<Edge> = self.edges.iter().map(|&(x, y)| (y, x)).collect();
        let by_y = CsrIndex::from_pairs(self.y_domain, &swapped);
        Relation::from_parts(self.edges, by_x, by_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(edges: &[Edge]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn builds_and_indexes() {
        let r = rel(&[(0, 1), (0, 2), (1, 2), (2, 0)]);
        assert_eq!(r.len(), 4);
        assert_eq!(r.ys_of(0), &[1, 2]);
        assert_eq!(r.xs_of(2), &[0, 1]);
        assert_eq!(r.x_degree(0), 2);
        assert_eq!(r.y_degree(2), 2);
        assert!(r.contains(1, 2));
        assert!(!r.contains(1, 1));
    }

    #[test]
    fn deduplicates_input() {
        let r = rel(&[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.edges(), &[(0, 1)]);
    }

    #[test]
    fn domains_inferred() {
        let r = rel(&[(3, 7)]);
        assert_eq!(r.x_domain(), 4);
        assert_eq!(r.y_domain(), 8);
        assert_eq!(r.active_x_count(), 1);
        assert_eq!(r.active_y_count(), 1);
    }

    #[test]
    fn explicit_domains_enforced() {
        let mut b = RelationBuilder::with_domains(2, 2);
        b.push(1, 1);
        let r = b.build();
        assert_eq!(r.x_domain(), 2);
    }

    #[test]
    #[should_panic(expected = "outside explicit domains")]
    fn explicit_domains_reject_overflow() {
        let mut b = RelationBuilder::with_domains(2, 2);
        b.push(2, 0);
    }

    #[test]
    fn full_join_size_counts_pairs_per_y() {
        // y=0 has deg 2 in r, 1 in s -> 2; y=1 has deg 1 and 2 -> 2. total 4.
        let r = rel(&[(0, 0), (1, 0), (2, 1)]);
        let s = rel(&[(5, 0), (6, 1), (7, 1)]);
        assert_eq!(r.full_join_size(&s), 4);
    }

    #[test]
    fn reduce_pair_drops_dangling() {
        let r = rel(&[(0, 0), (1, 5)]); // y=5 absent from s
        let s = rel(&[(9, 0)]);
        let (r2, s2) = Relation::reduce_pair(&r, &s);
        assert_eq!(r2.edges(), &[(0, 0)]);
        assert_eq!(s2.edges(), &[(9, 0)]);
    }

    #[test]
    fn reduce_star_keeps_common_y() {
        let a = rel(&[(0, 0), (1, 1), (2, 2)]);
        let b = rel(&[(0, 0), (1, 1)]);
        let c = rel(&[(3, 1), (4, 2)]);
        let reduced = Relation::reduce_star(&[a, b, c]);
        // only y=1 appears in all three
        assert_eq!(reduced[0].edges(), &[(1, 1)]);
        assert_eq!(reduced[1].edges(), &[(1, 1)]);
        assert_eq!(reduced[2].edges(), &[(3, 1)]);
    }

    #[test]
    fn transposed_swaps_columns_and_indexes() {
        let r = rel(&[(0, 5), (0, 7), (1, 5), (3, 2)]);
        let t = r.transposed();
        assert_eq!(t.edges(), &[(2, 3), (5, 0), (5, 1), (7, 0)]);
        assert_eq!(t.x_domain(), r.y_domain());
        assert_eq!(t.y_domain(), r.x_domain());
        assert_eq!(t.ys_of(5), r.xs_of(5));
        assert_eq!(t.xs_of(0), r.ys_of(0));
        // Involution: transposing twice restores the original.
        assert_eq!(t.transposed().edges(), r.edges());
    }

    #[test]
    fn reduce_star_accepts_borrowed_slices() {
        let a = rel(&[(0, 0), (1, 1)]);
        let b = rel(&[(5, 1)]);
        let by_ref = Relation::reduce_star(&[&a, &b]);
        let by_val = Relation::reduce_star(&[a.clone(), b.clone()]);
        assert_eq!(by_ref[0].edges(), by_val[0].edges());
        assert_eq!(by_ref[1].edges(), &[(5, 1)]);
    }

    #[test]
    fn empty_relation() {
        let r = rel(&[]);
        assert!(r.is_empty());
        assert_eq!(r.x_domain(), 0);
        assert_eq!(r.full_join_size(&r), 0);
    }
}
