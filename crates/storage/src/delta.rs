//! Batched relation deltas — the mutable data path.
//!
//! [`Relation`] is immutable by design: every index assumes sorted,
//! deduplicated edge lists. Updates therefore arrive as a staged
//! [`RelationDelta`] (a batch of inserts and deletes) that is first
//! [normalized](RelationDelta::normalize) against the base relation —
//! inserts already present and deletes of absent tuples drop out — and
//! then [applied](Relation::apply_delta) to produce a fresh `Relation`.
//!
//! Normalization is what makes *incremental view maintenance* sound: the
//! surviving tuples form a signed delta (`+1` per genuine insert, `−1`
//! per genuine delete) whose join contributions can be added to a cached
//! result's per-tuple support counts without ever double-counting, per
//! the identity `(R+ΔR) ⋈ (S+ΔS) = R⋈S + ΔR⋈S + R⋈ΔS + ΔR⋈ΔS`.

use crate::csr::CsrIndex;
use crate::relation::Relation;
use crate::{Edge, Value};

/// When the normalized delta is at least this fraction of the base
/// relation, [`Relation::apply_delta`] rebuilds from scratch (global
/// re-sort); below it, the new edge list is produced by a linear merge of
/// the already-sorted base with the sorted delta. Both paths end in the
/// same CSR construction; the threshold only decides how the merged edge
/// list is obtained.
pub const REBUILD_FRACTION: f64 = 0.25;

/// A staged batch of tuple inserts and deletes against one relation.
///
/// Within one batch, deletes win: a tuple both inserted and deleted nets
/// out to "absent after the batch". Duplicates are tolerated and collapse
/// during normalization.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RelationDelta {
    inserts: Vec<Edge>,
    deletes: Vec<Edge>,
}

impl RelationDelta {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A batch of only inserts.
    pub fn inserting(edges: impl IntoIterator<Item = Edge>) -> Self {
        Self {
            inserts: edges.into_iter().collect(),
            deletes: Vec::new(),
        }
    }

    /// A batch of only deletes.
    pub fn deleting(edges: impl IntoIterator<Item = Edge>) -> Self {
        Self {
            inserts: Vec::new(),
            deletes: edges.into_iter().collect(),
        }
    }

    /// Stages tuple `(x, y)` for insertion.
    pub fn insert(&mut self, x: Value, y: Value) -> &mut Self {
        self.inserts.push((x, y));
        self
    }

    /// Stages tuple `(x, y)` for deletion.
    pub fn delete(&mut self, x: Value, y: Value) -> &mut Self {
        self.deletes.push((x, y));
        self
    }

    /// Staged inserts, as given (not yet normalized).
    pub fn inserts(&self) -> &[Edge] {
        &self.inserts
    }

    /// Staged deletes, as given (not yet normalized).
    pub fn deletes(&self) -> &[Edge] {
        &self.deletes
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total staged tuples (before normalization).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Resolves the batch against `base` into its *effective* form:
    /// inserts that are genuinely new and deletes that genuinely hit.
    /// Everything else — re-inserts of present tuples, deletes of absent
    /// ones, duplicates, insert+delete of the same new tuple — drops out.
    ///
    /// An empty normalized delta means the batch is a semantic no-op and
    /// the caller can skip the epoch bump entirely.
    pub fn normalize(&self, base: &Relation) -> NormalizedDelta {
        // Arbitrary staged values may fall outside the base's dense
        // domains, where `Relation::contains` is out of bounds.
        let present = |(x, y): Edge| (x as usize) < base.x_domain() && base.contains(x, y);
        // All staged deletes, sorted, so the insert filter below is a
        // binary search instead of an O(|inserts| × |deletes|) scan.
        let mut all_deletes = self.deletes.clone();
        all_deletes.sort_unstable();
        let mut deletes: Vec<Edge> = self
            .deletes
            .iter()
            .copied()
            .filter(|&e| present(e))
            .collect();
        deletes.sort_unstable();
        deletes.dedup();
        let mut inserts: Vec<Edge> = self
            .inserts
            .iter()
            .copied()
            .filter(|&e| !present(e) && all_deletes.binary_search(&e).is_err())
            .collect();
        inserts.sort_unstable();
        inserts.dedup();
        NormalizedDelta { inserts, deletes }
    }
}

/// A delta resolved against a concrete base relation: sorted, deduplicated
/// inserts that are all absent from the base, and deletes that are all
/// present in it. Produced by [`RelationDelta::normalize`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NormalizedDelta {
    /// Tuples to add; sorted, none present in the base.
    pub inserts: Vec<Edge>,
    /// Tuples to remove; sorted, all present in the base.
    pub deletes: Vec<Edge>,
}

impl NormalizedDelta {
    /// True when the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Effective tuples touched (`|Δ⁺| + |Δ⁻|`).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// The delta as signed tuples: `+1` per insert, `−1` per delete — the
    /// form the maintenance identity consumes.
    pub fn signed(&self) -> impl Iterator<Item = (Value, Value, i64)> + '_ {
        self.inserts
            .iter()
            .map(|&(x, y)| (x, y, 1i64))
            .chain(self.deletes.iter().map(|&(x, y)| (x, y, -1i64)))
    }
}

impl Relation {
    /// Applies a staged batch, returning the updated relation. Shorthand
    /// for [`RelationDelta::normalize`] + [`Relation::apply_normalized`].
    pub fn apply_delta(&self, delta: &RelationDelta) -> Relation {
        self.apply_normalized(&delta.normalize(self))
    }

    /// Applies an already-normalized delta, returning the updated relation
    /// with both CSR indexes rebuilt.
    ///
    /// Small deltas (below [`REBUILD_FRACTION`] of the base) take a merge
    /// path: the base edge list is already sorted, so the new list is a
    /// single linear merge — `O(N + |Δ| log |Δ|)` instead of the
    /// `O(N log N)` full re-sort. Large deltas fall back to the full
    /// rebuild, which is cheaper than merging when most tuples move.
    /// Value domains never shrink below the base's: downstream consumers
    /// (dense matrix backends) may hold the old domain shape.
    pub fn apply_normalized(&self, delta: &NormalizedDelta) -> Relation {
        if delta.is_empty() {
            return self.clone();
        }
        let merged = if (delta.len() as f64) < REBUILD_FRACTION * self.len().max(1) as f64 {
            merge_edges(self.edges(), &delta.inserts, &delta.deletes)
        } else {
            let mut edges: Vec<Edge> = self
                .edges()
                .iter()
                .copied()
                .filter(|e| delta.deletes.binary_search(e).is_err())
                .chain(delta.inserts.iter().copied())
                .collect();
            edges.sort_unstable();
            edges
        };
        let x_domain = self.x_domain().max(
            merged
                .iter()
                .map(|&(x, _)| x as usize + 1)
                .max()
                .unwrap_or(0),
        );
        let y_domain = self.y_domain().max(
            merged
                .iter()
                .map(|&(_, y)| y as usize + 1)
                .max()
                .unwrap_or(0),
        );
        let by_x = CsrIndex::from_pairs(x_domain, &merged);
        let swapped: Vec<Edge> = merged.iter().map(|&(x, y)| (y, x)).collect();
        let by_y = CsrIndex::from_pairs(y_domain, &swapped);
        Relation::from_parts(merged, by_x, by_y)
    }
}

/// Merges a sorted base edge list with sorted inserts while dropping
/// sorted deletes, in one linear pass. All three inputs are sorted; the
/// output is sorted and contains no duplicates because the normalized
/// inserts are disjoint from the base and the deletes are a subset of it.
fn merge_edges(base: &[Edge], inserts: &[Edge], deletes: &[Edge]) -> Vec<Edge> {
    let mut out = Vec::with_capacity(base.len() + inserts.len() - deletes.len());
    let (mut i, mut d) = (0usize, 0usize);
    for &edge in base {
        while i < inserts.len() && inserts[i] < edge {
            out.push(inserts[i]);
            i += 1;
        }
        if d < deletes.len() && deletes[d] == edge {
            d += 1;
            continue;
        }
        out.push(edge);
    }
    out.extend_from_slice(&inserts[i..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(edges: &[Edge]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn normalize_drops_noops() {
        let base = rel(&[(0, 0), (1, 1)]);
        let mut delta = RelationDelta::new();
        delta.insert(0, 0); // already present
        delta.insert(2, 2);
        delta.insert(2, 2); // duplicate
        delta.delete(1, 1);
        delta.delete(5, 5); // absent
        let norm = delta.normalize(&base);
        assert_eq!(norm.inserts, vec![(2, 2)]);
        assert_eq!(norm.deletes, vec![(1, 1)]);
        assert_eq!(norm.len(), 2);
    }

    #[test]
    fn normalize_delete_wins_within_batch() {
        let base = rel(&[(0, 0)]);
        // (3,3) inserted and deleted in one batch and absent from the
        // base: nets to nothing. (0,0) deleted and "re-inserted": the
        // delete wins by the documented batch semantics.
        let mut delta = RelationDelta::new();
        delta.insert(3, 3).delete(3, 3);
        delta.insert(0, 0).delete(0, 0);
        let norm = delta.normalize(&base);
        assert!(norm.inserts.is_empty());
        assert_eq!(norm.deletes, vec![(0, 0)]);
    }

    #[test]
    fn empty_batch_normalizes_empty() {
        let base = rel(&[(0, 0)]);
        let norm = RelationDelta::new().normalize(&base);
        assert!(norm.is_empty());
        assert!(RelationDelta::new().is_empty());
    }

    #[test]
    fn apply_delta_inserts_and_deletes() {
        let base = rel(&[(0, 0), (1, 0), (2, 1)]);
        let mut delta = RelationDelta::new();
        delta.insert(3, 1).delete(1, 0);
        let next = base.apply_delta(&delta);
        assert_eq!(next.edges(), &[(0, 0), (2, 1), (3, 1)]);
        assert_eq!(next.xs_of(1), &[2, 3]);
        assert_eq!(next.ys_of(1), &[] as &[Value]);
        // The base is untouched.
        assert_eq!(base.len(), 3);
    }

    #[test]
    fn merge_path_equals_rebuild_path() {
        // A base big enough that a 2-tuple delta takes the merge path and
        // a 60-tuple delta takes the rebuild path; both must agree with
        // building from scratch.
        let base = rel(&(0..100u32).map(|i| (i, i % 7)).collect::<Vec<_>>());
        for delta_size in [2u32, 60] {
            let mut delta = RelationDelta::new();
            for j in 0..delta_size {
                delta.insert(200 + j, j % 5);
                delta.delete(j, j % 7);
            }
            let incremental = base.apply_delta(&delta);
            let norm = delta.normalize(&base);
            let reference: Vec<Edge> = base
                .edges()
                .iter()
                .copied()
                .filter(|e| !norm.deletes.contains(e))
                .chain(norm.inserts.iter().copied())
                .collect();
            let reference = Relation::from_edges(reference);
            assert_eq!(incremental.edges(), reference.edges(), "size {delta_size}");
            for y in 0..7u32 {
                assert_eq!(incremental.xs_of(y), reference.xs_of(y), "y={y}");
            }
        }
    }

    #[test]
    fn domains_grow_but_never_shrink() {
        let base = rel(&[(5, 5)]);
        let grown = base.apply_delta(RelationDelta::new().insert(9, 2));
        assert_eq!(grown.x_domain(), 10);
        assert_eq!(grown.y_domain(), 6);
        // Deleting the max value keeps the old domain shape.
        let shrunk = grown.apply_delta(RelationDelta::new().delete(9, 2));
        assert_eq!(shrunk.x_domain(), 10);
        assert_eq!(shrunk.edges(), base.edges());
    }

    #[test]
    fn signed_iterates_inserts_then_deletes() {
        let base = rel(&[(0, 0)]);
        let norm = RelationDelta::inserting([(1, 1)])
            .normalize(&base)
            .signed()
            .collect::<Vec<_>>();
        assert_eq!(norm, vec![(1, 1, 1)]);
        let norm = RelationDelta::deleting([(0, 0)]).normalize(&base);
        assert_eq!(norm.signed().collect::<Vec<_>>(), vec![(0, 0, -1)]);
    }

    #[test]
    fn apply_empty_delta_is_identity() {
        let base = rel(&[(0, 0), (1, 2)]);
        let next = base.apply_delta(&RelationDelta::new());
        assert_eq!(next.edges(), base.edges());
    }
}
