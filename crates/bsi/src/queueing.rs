//! Event-driven queueing simulation of the §3.3 serving system.
//!
//! [`simulate_batching`](crate::simulate_batching) reports steady-state
//! averages under deterministic arrivals; this module refines the model for
//! capacity planning: Poisson arrivals at rate `B`, a fixed pool of `m`
//! identical servers, dispatch of a batch as soon as `C` requests are queued
//! (or the queue drains), measured per-batch service times, and the full
//! per-query latency distribution (mean, p50, p95, max). This answers the
//! question Proposition 2 poses — how many machines for a target latency —
//! *for the measured service curve* instead of the asymptotic one.

use crate::{answer_batch, BsiQuery, BsiStrategy};
use mmjoin_storage::Relation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Latency distribution summary (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Mean per-query latency.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencySummary {
    fn from_sorted(lat: &[f64]) -> Self {
        assert!(!lat.is_empty());
        let idx = |q: f64| ((lat.len() - 1) as f64 * q).round() as usize;
        Self {
            mean: lat.iter().sum::<f64>() / lat.len() as f64,
            p50: lat[idx(0.5)],
            p95: lat[idx(0.95)],
            max: *lat.last().unwrap(),
        }
    }
}

/// Result of one queueing simulation.
#[derive(Debug, Clone)]
pub struct QueueReport {
    /// Servers simulated.
    pub servers: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Per-query latency (queue wait + service).
    pub latency: LatencySummary,
    /// Fraction of simulated time the servers were busy, averaged.
    pub utilization: f64,
    /// True if the backlog grew monotonically (system unstable at this
    /// rate/capacity — Proposition 2 says add machines).
    pub saturated: bool,
}

/// Simulates `n_queries` Poisson arrivals at `rate` q/s served by
/// `servers` machines in batches of `batch_size`, using measured service
/// times from evaluating the real workload with `strategy`.
#[allow(clippy::too_many_arguments)]
pub fn simulate_queue(
    r: &Relation,
    s: &Relation,
    workload: &[BsiQuery],
    batch_size: usize,
    rate: f64,
    servers: usize,
    strategy: &BsiStrategy,
    seed: u64,
) -> QueueReport {
    assert!(batch_size >= 1 && servers >= 1 && rate > 0.0);
    assert!(!workload.is_empty(), "need a workload to simulate");
    let mut rng = StdRng::seed_from_u64(seed);

    // Poisson arrival times.
    let mut arrivals = Vec::with_capacity(workload.len());
    let mut t = 0.0f64;
    for _ in 0..workload.len() {
        let u: f64 = rng.gen_range(1e-12..1.0);
        t += -u.ln() / rate;
        arrivals.push(t);
    }
    let horizon = t;

    // Measure real service times per batch (one evaluation each).
    let batches: Vec<&[BsiQuery]> = workload.chunks(batch_size).collect();
    let service: Vec<f64> = batches
        .iter()
        .map(|batch| {
            let t0 = Instant::now();
            std::hint::black_box(answer_batch(r, s, batch, strategy));
            t0.elapsed().as_secs_f64()
        })
        .collect();

    // Event-driven dispatch: batch i contains queries
    // [i*batch_size, ...); it is ready when its last query arrives, and
    // starts on the earliest-free server.
    let mut server_free = vec![0.0f64; servers];
    let mut latencies = Vec::with_capacity(workload.len());
    let mut busy = 0.0f64;
    let mut last_backlog = 0.0f64;
    let mut saturated = true;
    for (i, batch) in batches.iter().enumerate() {
        let lo = i * batch_size;
        let ready = arrivals[lo + batch.len() - 1];
        let (srv, &free) = server_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one server");
        let start = ready.max(free);
        let finish = start + service[i];
        server_free[srv] = finish;
        busy += service[i];
        for &arrival in &arrivals[lo..lo + batch.len()] {
            latencies.push(finish - arrival);
        }
        let backlog = (start - ready).max(0.0);
        if backlog <= last_backlog {
            saturated = false; // backlog shrank at least once
        }
        last_backlog = backlog;
    }
    latencies.sort_unstable_by(|a, b| a.total_cmp(b));
    QueueReport {
        servers,
        batch_size,
        latency: LatencySummary::from_sorted(&latencies),
        utilization: (busy / (horizon.max(1e-9) * servers as f64)).min(1.0),
        saturated: saturated && batches.len() > 2,
    }
}

/// Smallest server count in `1..=max_servers` whose simulated p95 latency
/// meets `target_p95` seconds, or `None` if even `max_servers` misses it —
/// the Proposition-2 capacity-planning question against measured costs.
#[allow(clippy::too_many_arguments)]
pub fn min_servers_for_latency(
    r: &Relation,
    s: &Relation,
    workload: &[BsiQuery],
    batch_size: usize,
    rate: f64,
    target_p95: f64,
    max_servers: usize,
    strategy: &BsiStrategy,
) -> Option<(usize, QueueReport)> {
    for servers in 1..=max_servers {
        let rep = simulate_queue(r, s, workload, batch_size, rate, servers, strategy, 7);
        if rep.latency.p95 <= target_p95 && !rep.saturated {
            return Some((servers, rep));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_workload;
    use mmjoin_storage::Value;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    fn setup() -> (Relation, Vec<BsiQuery>) {
        let mut edges = Vec::new();
        for x in 0..40u32 {
            for e in 0..6u32 {
                edges.push((x, (x + e) % 25));
            }
        }
        let r = rel(&edges);
        let w = random_workload(&r, &r, 400, 3);
        (r, w)
    }

    #[test]
    fn latencies_positive_and_ordered() {
        let (r, w) = setup();
        let rep = simulate_queue(&r, &r, &w, 50, 10_000.0, 2, &BsiStrategy::NonMm, 1);
        assert!(rep.latency.mean > 0.0);
        assert!(rep.latency.p50 <= rep.latency.p95);
        assert!(rep.latency.p95 <= rep.latency.max);
        assert!((0.0..=1.0).contains(&rep.utilization));
    }

    #[test]
    fn more_servers_never_hurt_p95() {
        let (r, w) = setup();
        let one = simulate_queue(&r, &r, &w, 50, 1_000_000.0, 1, &BsiStrategy::NonMm, 1);
        let four = simulate_queue(&r, &r, &w, 50, 1_000_000.0, 4, &BsiStrategy::NonMm, 1);
        // With an extreme arrival rate the single server queues heavily.
        assert!(four.latency.p95 <= one.latency.p95 * 1.5 + 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let (r, w) = setup();
        let a = simulate_queue(&r, &r, &w, 25, 5_000.0, 2, &BsiStrategy::NonMm, 9);
        let b = simulate_queue(&r, &r, &w, 25, 5_000.0, 2, &BsiStrategy::NonMm, 9);
        // Arrival process identical; service times re-measured (wall clock)
        // so compare the structural fields.
        assert_eq!(a.servers, b.servers);
        assert_eq!(a.batch_size, b.batch_size);
    }

    #[test]
    fn capacity_planner_finds_feasible_point() {
        let (r, w) = setup();
        // Generous target: must be satisfiable with few servers.
        let found = min_servers_for_latency(&r, &r, &w, 50, 1_000.0, 10.0, 4, &BsiStrategy::NonMm);
        let (servers, rep) = found.expect("10s target must be reachable");
        assert!((1..=4).contains(&servers));
        assert!(rep.latency.p95 <= 10.0);
    }

    #[test]
    #[should_panic(expected = "need a workload")]
    fn empty_workload_rejected() {
        let (r, _) = setup();
        let _ = simulate_queue(&r, &r, &[], 10, 100.0, 1, &BsiStrategy::NonMm, 1);
    }
}
