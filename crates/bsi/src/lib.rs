//! Boolean set intersection (BSI) with request batching — §3.3.
//!
//! A stream of boolean queries `Qab() = R(a, y), S(b, y)` ("do sets `a` and
//! `b` intersect?") arrives at `B` queries per second. Answering each query
//! alone costs up to `O(N)`; batching `C` requests into the conjunctive
//! query `Qbatch(x, z) = R(x, y), S(z, y), T(x, z)` amortises the work:
//!
//! * [`BsiStrategy::PerRequest`] answers each request with an adaptive
//!   sorted-list intersection (the indexed version of Example 5's
//!   per-request processing; also the WCOJ plan for `Qbatch` seeded
//!   from `T`) — `O(N · C^{1/2})` worst case over a batch.
//! * [`BsiStrategy::NonMm`] filters `R` and `S` down to the requested sets
//!   and evaluates the filtered 2-path query with the combinatorial
//!   expansion join — the paper's `Non-MMJoin` series of Figure 6.
//! * [`BsiStrategy::Mm`] is the paper's headline setup: same batch
//!   filtering, but Algorithm 1 evaluates the filtered query — the
//!   AYZ-flavoured `O(N · C^{1/3})` strategy of Proposition 2.
//!
//! [`simulate_batching`] replays a workload at a fixed arrival rate and
//! batch size and reports the average delay (collection wait + processing)
//! and the number of parallel processing units needed to keep up — the
//! quantities of Figure 6b–d.

pub mod queueing;

pub use queueing::{min_servers_for_latency, simulate_queue, LatencySummary, QueueReport};

use mmjoin_core::{two_path_join_project, JoinConfig};
use mmjoin_storage::{Relation, RelationBuilder, Value};
use mmjoin_wcoj::batch_filter_exists;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Instant;

/// One boolean intersection request.
pub type BsiQuery = (Value, Value);

/// Batch evaluation strategy.
#[derive(Debug, Clone)]
pub enum BsiStrategy {
    /// Per-request adaptive sorted-list intersection: the WCOJ plan for
    /// `Qbatch` seeded from the batch relation (Example 5's per-request
    /// processing, with indexes).
    PerRequest,
    /// Batch-filtered 2-path query evaluated with the *combinatorial*
    /// expansion join (the paper's `Non-MMJoin` series in Figure 6).
    NonMm,
    /// Batch-filtered 2-path query via Algorithm 1 (the `MMJoin` series).
    Mm(Box<JoinConfig>),
}

impl BsiStrategy {
    /// MM strategy on `threads` workers.
    pub fn mm(threads: usize) -> Self {
        BsiStrategy::Mm(Box::new(JoinConfig {
            threads,
            ..JoinConfig::default()
        }))
    }
}

/// Restricts `r` to the sets named on one side of the batch.
fn filter_side(r: &Relation, wanted: &HashSet<Value>) -> Relation {
    let mut b = RelationBuilder::with_domains(r.x_domain(), r.y_domain());
    for &a in wanted {
        if (a as usize) < r.x_domain() {
            for &y in r.ys_of(a) {
                b.push(a, y);
            }
        }
    }
    b.build()
}

/// Answers one batch of queries; `answers[i]` is whether
/// `set_R(batch[i].0) ∩ set_S(batch[i].1) ≠ ∅`.
///
/// ```
/// use mmjoin_bsi::{answer_batch, BsiStrategy};
/// use mmjoin_storage::Relation;
/// let r = Relation::from_edges([(0, 1), (1, 2)]);
/// let answers = answer_batch(&r, &r, &[(0, 0), (0, 1)], &BsiStrategy::PerRequest);
/// assert_eq!(answers, vec![true, false]);
/// ```
pub fn answer_batch(
    r: &Relation,
    s: &Relation,
    batch: &[BsiQuery],
    strategy: &BsiStrategy,
) -> Vec<bool> {
    match strategy {
        BsiStrategy::PerRequest => batch_filter_exists(r, s, batch),
        BsiStrategy::NonMm | BsiStrategy::Mm(_) => {
            // Filter R and S to the requested sets (the paper's setup),
            // evaluate the filtered 2-path query, probe the batch pairs.
            let wanted_a: HashSet<Value> = batch.iter().map(|&(a, _)| a).collect();
            let wanted_b: HashSet<Value> = batch.iter().map(|&(_, b)| b).collect();
            let ra = filter_side(r, &wanted_a);
            let sb = filter_side(s, &wanted_b);
            let pairs = match strategy {
                BsiStrategy::Mm(cfg) => two_path_join_project(&ra, &sb, cfg),
                _ => mmjoin_baseline::nonmm::ExpandDedupEngine::serial().join_project(&ra, &sb),
            };
            let set: HashSet<BsiQuery> = pairs.into_iter().collect();
            batch.iter().map(|q| set.contains(q)).collect()
        }
    }
}

/// A uniformly random workload of `n` queries over the active sets of
/// `r`/`s` (the §7.5 workload).
pub fn random_workload(r: &Relation, s: &Relation, n: usize, seed: u64) -> Vec<BsiQuery> {
    let xs: Vec<Value> = r.by_x().iter_nonempty().map(|(x, _)| x).collect();
    let zs: Vec<Value> = s.by_x().iter_nonempty().map(|(z, _)| z).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                xs[rng.gen_range(0..xs.len().max(1))],
                zs[rng.gen_range(0..zs.len().max(1))],
            )
        })
        .collect()
}

/// Result of a batching simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BsiReport {
    /// Batch size used.
    pub batch_size: usize,
    /// Average per-query delay in seconds: mean collection wait
    /// (`(C-1)/2B`) plus measured processing time per batch.
    pub avg_delay_secs: f64,
    /// Mean measured processing seconds per batch.
    pub processing_secs: f64,
    /// Parallel processing units needed to keep up with the arrival rate
    /// (`⌈processing / (C/B)⌉`).
    pub machines_needed: usize,
    /// Fraction of queries answered `true` (sanity statistic).
    pub positive_rate: f64,
}

/// Replays `workload` in batches of `batch_size` arriving at
/// `arrival_rate` queries/second and measures delay.
pub fn simulate_batching(
    r: &Relation,
    s: &Relation,
    workload: &[BsiQuery],
    batch_size: usize,
    arrival_rate: f64,
    strategy: &BsiStrategy,
) -> BsiReport {
    assert!(batch_size >= 1, "batch size must be positive");
    assert!(arrival_rate > 0.0, "arrival rate must be positive");
    let mut processing_total = 0.0f64;
    let mut batches = 0usize;
    let mut positives = 0usize;
    for batch in workload.chunks(batch_size) {
        let t0 = Instant::now();
        let answers = answer_batch(r, s, batch, strategy);
        processing_total += t0.elapsed().as_secs_f64();
        batches += 1;
        positives += answers.iter().filter(|&&b| b).count();
    }
    let processing_secs = if batches > 0 {
        processing_total / batches as f64
    } else {
        0.0
    };
    let collection_wait = (batch_size.saturating_sub(1)) as f64 / (2.0 * arrival_rate);
    let window = batch_size as f64 / arrival_rate;
    BsiReport {
        batch_size,
        avg_delay_secs: collection_wait + processing_secs,
        processing_secs,
        machines_needed: (processing_secs / window).ceil().max(1.0) as usize,
        positive_rate: if workload.is_empty() {
            0.0
        } else {
            positives as f64 / workload.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn strategies_agree() {
        let r = rel(&[(0, 0), (0, 1), (1, 2), (2, 3)]);
        let s = rel(&[(0, 1), (1, 5), (2, 3), (3, 0)]);
        let batch: Vec<BsiQuery> = vec![(0, 0), (0, 3), (1, 1), (2, 2), (9, 0)];
        let per_req = answer_batch(&r, &s, &batch, &BsiStrategy::PerRequest);
        let non_mm = answer_batch(&r, &s, &batch, &BsiStrategy::NonMm);
        let mm = answer_batch(&r, &s, &batch, &BsiStrategy::mm(1));
        assert_eq!(per_req, non_mm);
        assert_eq!(non_mm, mm);
        assert_eq!(non_mm, vec![true, true, false, true, false]);
    }

    #[test]
    fn empty_batch() {
        let r = rel(&[(0, 0)]);
        for st in [
            BsiStrategy::PerRequest,
            BsiStrategy::NonMm,
            BsiStrategy::mm(1),
        ] {
            assert!(answer_batch(&r, &r, &[], &st).is_empty());
        }
    }

    #[test]
    fn workload_deterministic_and_in_domain() {
        let r = rel(&[(0, 0), (5, 1), (9, 2)]);
        let w1 = random_workload(&r, &r, 50, 7);
        let w2 = random_workload(&r, &r, 50, 7);
        assert_eq!(w1, w2);
        for &(a, b) in &w1 {
            assert!([0, 5, 9].contains(&a));
            assert!([0, 5, 9].contains(&b));
        }
    }

    #[test]
    fn simulation_reports_sane_numbers() {
        let r = rel(&[(0, 0), (1, 0), (2, 1)]);
        let w = random_workload(&r, &r, 40, 3);
        let rep = simulate_batching(&r, &r, &w, 10, 1000.0, &BsiStrategy::NonMm);
        let rep2 = simulate_batching(&r, &r, &w, 10, 1000.0, &BsiStrategy::PerRequest);
        assert_eq!(rep2.batch_size, 10);
        assert_eq!(rep.batch_size, 10);
        assert!(rep.avg_delay_secs >= 0.0);
        assert!(rep.machines_needed >= 1);
        assert!((0.0..=1.0).contains(&rep.positive_rate));
    }

    #[test]
    fn larger_batches_increase_collection_wait() {
        let r = rel(&[(0, 0), (1, 0)]);
        let w = random_workload(&r, &r, 100, 1);
        let small = simulate_batching(&r, &r, &w, 5, 1000.0, &BsiStrategy::NonMm);
        let large = simulate_batching(&r, &r, &w, 100, 1000.0, &BsiStrategy::NonMm);
        // Collection wait dominates on this tiny instance.
        assert!(large.avg_delay_secs > small.avg_delay_secs);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn mm_matches_nonmm(
            r_edges in proptest::collection::vec((0u32..10, 0u32..10), 1..40),
            s_edges in proptest::collection::vec((0u32..10, 0u32..10), 1..40),
            batch in proptest::collection::vec((0u32..12, 0u32..12), 0..25),
        ) {
            let r = rel(&r_edges);
            let s = rel(&s_edges);
            let reference = answer_batch(&r, &s, &batch, &BsiStrategy::PerRequest);
            prop_assert_eq!(answer_batch(&r, &s, &batch, &BsiStrategy::NonMm), reference.clone());
            prop_assert_eq!(answer_batch(&r, &s, &batch, &BsiStrategy::mm(1)), reference);
        }
    }
}
