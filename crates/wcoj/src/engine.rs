//! [`Engine`] wrapper over the worst-case optimal join primitives.
//!
//! The WCOJ reference engine enumerates the full join with the leapfrog
//! machinery and deduplicates through [`ProjectionAccumulator`] — the
//! `O(Σ N_i + |OUT⋈|)` plan of Proposition 1. It is the ground-truth
//! engine agreement tests compare everything else against.

use crate::star::{star_full_join_for_each, two_path_for_each, ProjectionAccumulator};
use mmjoin_api::{Engine, EngineError, ExecStats, PlanKind, PlanStats, Query, Sink};

/// The worst-case-optimal reference engine (2-path and star).
#[derive(Debug, Default, Clone, Copy)]
pub struct WcojEngine;

impl Engine for WcojEngine {
    fn name(&self) -> &str {
        "WCOJ"
    }

    fn supports(&self, query: &Query<'_>) -> bool {
        matches!(
            query,
            Query::TwoPath {
                with_counts: false,
                ..
            } | Query::Star { .. }
        )
    }

    fn execute(&self, query: &Query<'_>, sink: &mut dyn Sink) -> Result<ExecStats, EngineError> {
        query.validate()?;
        let tuples = match query {
            Query::TwoPath {
                r,
                s,
                with_counts: false,
                ..
            } => {
                let mut acc = ProjectionAccumulator::new(2);
                two_path_for_each(r, s, |x, _, z| acc.push(&[x, z]));
                acc.finish()
            }
            Query::Star { relations } => {
                let mut acc = ProjectionAccumulator::new(relations.len());
                star_full_join_for_each(relations, |_, tuple| acc.push(tuple));
                acc.finish()
            }
            _ => return Err(self.unsupported(query)),
        };
        sink.begin(query.output_arity());
        let mut rows = 0u64;
        for t in &tuples {
            if !sink.wants_more() {
                break;
            }
            sink.row(t);
            rows += 1;
        }
        Ok(ExecStats::new(self.name(), rows).with_plan(PlanStats {
            kind: PlanKind::Wcoj,
            ..PlanStats::wcoj()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star::star_join_project;
    use mmjoin_api::{PairSink, VecSink};
    use mmjoin_storage::{Relation, Value};

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn two_path_matches_star_reference() {
        let r = rel(&[(0, 0), (1, 0), (1, 1), (2, 1)]);
        let s = rel(&[(5, 0), (6, 1)]);
        let q = Query::two_path(&r, &s).build().unwrap();
        let mut sink = PairSink::new();
        let stats = WcojEngine.execute(&q, &mut sink).unwrap();
        let expected: Vec<(Value, Value)> = star_join_project(&[r.clone(), s.clone()])
            .into_iter()
            .map(|t| (t[0], t[1]))
            .collect();
        assert_eq!(sink.pairs, expected);
        assert_eq!(stats.plan.unwrap().kind, PlanKind::Wcoj);
    }

    #[test]
    fn star_matches_free_function() {
        let rels = vec![
            rel(&[(0, 0), (1, 0)]),
            rel(&[(5, 0)]),
            rel(&[(7, 0), (8, 0)]),
        ];
        let q = Query::star(&rels).build().unwrap();
        let mut sink = VecSink::new();
        WcojEngine.execute(&q, &mut sink).unwrap();
        assert_eq!(sink.rows, star_join_project(&rels));
    }

    #[test]
    fn counting_queries_rejected() {
        let r = rel(&[(0, 0)]);
        let q = Query::two_path(&r, &r).with_counts().build().unwrap();
        assert!(!WcojEngine.supports(&q));
        let mut sink = PairSink::new();
        assert!(WcojEngine.execute(&q, &mut sink).is_err());
    }
}
