//! Worst-case optimal evaluation of the batched BSI query
//! `Qbatch(x, z) = R(x, y), S(z, y), T(x, z)` (§3.3).
//!
//! The batch relation `T` holds the `C` queued `(a, b)` requests. The
//! worst-case optimal plan for this (triangle-shaped) query seeds from `T`
//! — by far the smallest relation — and intersects the adjacency lists
//! `R.ys_of(a) ∩ S.ys_of(b)` per request with the adaptive merge/galloping
//! kernel. Total cost `O(C · min(deg))`, i.e. the `O(N · C^{1/2})` bound of
//! §3.3 in the worst case.

use mmjoin_storage::csr::{adaptive_intersect_count, intersect_into};
use mmjoin_storage::{Relation, Value};

/// For each request `(a, b)` in `batch`, reports whether
/// `R(a, y) ⋈ S(b, y)` is non-empty. Output is parallel to `batch`.
pub fn batch_filter_exists(r: &Relation, s: &Relation, batch: &[(Value, Value)]) -> Vec<bool> {
    batch
        .iter()
        .map(|&(a, b)| {
            let ys_a = if (a as usize) < r.x_domain() {
                r.ys_of(a)
            } else {
                &[]
            };
            let ys_b = if (b as usize) < s.x_domain() {
                s.ys_of(b)
            } else {
                &[]
            };
            if ys_a.is_empty() || ys_b.is_empty() {
                return false;
            }
            adaptive_intersect_count(ys_a, ys_b) > 0
        })
        .collect()
}

/// For each request `(a, b)` in `batch`, returns the actual witness set
/// `π_y (R(a,y) ⋈ S(b,y))` — the non-projecting variant `Q̄ab(y)` of §2.1.
pub fn batch_filter_witnesses(
    r: &Relation,
    s: &Relation,
    batch: &[(Value, Value)],
) -> Vec<Vec<Value>> {
    let mut scratch = Vec::new();
    batch
        .iter()
        .map(|&(a, b)| {
            let ys_a = if (a as usize) < r.x_domain() {
                r.ys_of(a)
            } else {
                &[]
            };
            let ys_b = if (b as usize) < s.x_domain() {
                s.ys_of(b)
            } else {
                &[]
            };
            intersect_into(ys_a, ys_b, &mut scratch);
            scratch.clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn exists_basic() {
        let r = rel(&[(0, 1), (0, 2), (1, 3)]);
        let s = rel(&[(5, 2), (6, 4)]);
        let out = batch_filter_exists(&r, &s, &[(0, 5), (1, 5), (0, 6), (9, 5)]);
        assert_eq!(out, vec![true, false, false, false]);
    }

    #[test]
    fn witnesses_basic() {
        let r = rel(&[(0, 1), (0, 2), (0, 3)]);
        let s = rel(&[(5, 2), (5, 3), (5, 9)]);
        let out = batch_filter_witnesses(&r, &s, &[(0, 5)]);
        assert_eq!(out, vec![vec![2, 3]]);
    }

    #[test]
    fn out_of_domain_requests_are_false() {
        let r = rel(&[(0, 1)]);
        let s = rel(&[(0, 1)]);
        let out = batch_filter_exists(&r, &s, &[(100, 0), (0, 100)]);
        assert_eq!(out, vec![false, false]);
    }

    #[test]
    fn empty_batch() {
        let r = rel(&[(0, 1)]);
        let s = rel(&[(0, 1)]);
        assert!(batch_filter_exists(&r, &s, &[]).is_empty());
        assert!(batch_filter_witnesses(&r, &s, &[]).is_empty());
    }

    proptest! {
        #[test]
        fn exists_matches_witness_nonemptiness(
            r_edges in proptest::collection::vec((0u32..10, 0u32..10), 0..40),
            s_edges in proptest::collection::vec((0u32..10, 0u32..10), 0..40),
            batch in proptest::collection::vec((0u32..12, 0u32..12), 0..30),
        ) {
            let r = rel(&r_edges);
            let s = rel(&s_edges);
            let ex = batch_filter_exists(&r, &s, &batch);
            let wit = batch_filter_witnesses(&r, &s, &batch);
            for (e, w) in ex.iter().zip(&wit) {
                prop_assert_eq!(*e, !w.is_empty());
            }
        }
    }
}
