//! Worst-case optimal evaluation of star queries.

use crate::leapfrog::LeapfrogIter;
use mmjoin_storage::{Relation, Value};

/// Enumerates the *full* (pre-projection) result of the 2-path query
/// `R(x, y) ⋈ S(z, y)`, invoking `f(x, y, z)` once per witness tuple.
///
/// Iterates the shared `y` column with a 2-way leapfrog, then the product of
/// inverted lists — `O(N_R + N_S + |OUT⋈|)`.
pub fn two_path_for_each(r: &Relation, s: &Relation, mut f: impl FnMut(Value, Value, Value)) {
    let dom = r.y_domain().min(s.y_domain());
    for y in 0..dom as Value {
        let xs = r.xs_of(y);
        if xs.is_empty() {
            continue;
        }
        let zs = s.xs_of(y);
        if zs.is_empty() {
            continue;
        }
        for &x in xs {
            for &z in zs {
                f(x, y, z);
            }
        }
    }
}

/// Enumerates the full star join `R1(x1,y) ⋈ … ⋈ Rk(xk,y)`, calling
/// `f(y, &tuple)` once per witness, where `tuple[i] = xi`.
///
/// The `y` column intersection is a k-way leapfrog over the active-`y` lists;
/// per shared `y` the Cartesian product of the inverted lists is emitted by
/// an odometer loop with no allocation beyond the tuple buffer.
pub fn star_full_join_for_each<R: AsRef<Relation>>(
    relations: &[R],
    mut f: impl FnMut(Value, &[Value]),
) {
    assert!(
        !relations.is_empty(),
        "star query needs at least one relation"
    );
    // Sorted lists of active y values per relation.
    let active: Vec<Vec<Value>> = relations
        .iter()
        .map(|r| r.as_ref().by_y().iter_nonempty().map(|(y, _)| y).collect())
        .collect();
    let lists: Vec<&[Value]> = active.iter().map(|v| v.as_slice()).collect();
    let k = relations.len();
    let mut tuple = vec![0 as Value; k];
    for y in LeapfrogIter::new(lists) {
        let inv: Vec<&[Value]> = relations.iter().map(|r| r.as_ref().xs_of(y)).collect();
        debug_assert!(inv.iter().all(|l| !l.is_empty()));
        // Odometer over the product.
        let mut idx = vec![0usize; k];
        'outer: loop {
            for i in 0..k {
                tuple[i] = inv[i][idx[i]];
            }
            f(y, &tuple);
            // Increment odometer.
            let mut d = k;
            loop {
                if d == 0 {
                    break 'outer;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < inv[d].len() {
                    break;
                }
                idx[d] = 0;
            }
        }
    }
}

/// Count of the full star join without materialisation:
/// `Σ_y Π_i |L_i[y]|`.
pub fn full_join_count<R: AsRef<Relation>>(relations: &[R]) -> u64 {
    assert!(!relations.is_empty());
    let active: Vec<Vec<Value>> = relations
        .iter()
        .map(|r| r.as_ref().by_y().iter_nonempty().map(|(y, _)| y).collect())
        .collect();
    let lists: Vec<&[Value]> = active.iter().map(|v| v.as_slice()).collect();
    let mut total = 0u64;
    for y in LeapfrogIter::new(lists) {
        let mut prod = 1u64;
        for r in relations {
            prod = prod.saturating_mul(r.as_ref().xs_of(y).len() as u64);
        }
        total = total.saturating_add(prod);
    }
    total
}

/// Full WCOJ star join *with projection onto the head variables*, i.e. the
/// baseline "compute the join, then deduplicate" of Proposition 1, returning
/// the sorted distinct result tuples.
///
/// This is the reference semantics every optimized engine in the workspace
/// is validated against.
pub fn star_join_project<R: AsRef<Relation>>(relations: &[R]) -> Vec<Vec<Value>> {
    let mut acc = ProjectionAccumulator::new(relations.len());
    star_full_join_for_each(relations, |_, tuple| acc.push(tuple));
    acc.finish()
}

/// Bounded-memory accumulator for projected star tuples with periodic
/// sort+dedup flushes.
///
/// Tuples of arity ≤ 4 are bit-packed into `u128` keys, so pushing a tuple
/// is allocation-free and deduplication is a plain integer sort — the
/// difference between ~3 ns and ~50 ns per enumerated witness, which
/// dominates the light steps of the star algorithms. Wider tuples fall back
/// to `Vec<Value>` rows.
pub struct ProjectionAccumulator {
    k: usize,
    packed: Vec<u128>,
    general: Vec<Vec<Value>>,
    packed_out: Vec<u128>,
    general_out: Vec<Vec<Value>>,
}

impl ProjectionAccumulator {
    const CHUNK: usize = 1 << 21;

    /// New accumulator for arity-`k` tuples.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            packed: Vec::new(),
            general: Vec::new(),
            packed_out: Vec::new(),
            general_out: Vec::new(),
        }
    }

    #[inline]
    fn pack(tuple: &[Value]) -> u128 {
        let mut key = 0u128;
        for &v in tuple {
            key = key << 32 | v as u128;
        }
        key
    }

    fn unpack(k: usize, key: u128) -> Vec<Value> {
        let mut t = vec![0 as Value; k];
        let mut key = key;
        for slot in t.iter_mut().rev() {
            *slot = (key & 0xffff_ffff) as Value;
            key >>= 32;
        }
        t
    }

    /// Appends one tuple (duplicates welcome).
    #[inline]
    pub fn push(&mut self, tuple: &[Value]) {
        debug_assert_eq!(tuple.len(), self.k);
        if self.k <= 4 {
            self.packed.push(Self::pack(tuple));
            if self.packed.len() >= Self::CHUNK {
                self.flush();
            }
        } else {
            self.general.push(tuple.to_vec());
            if self.general.len() >= Self::CHUNK {
                self.flush();
            }
        }
    }

    fn flush(&mut self) {
        if self.k <= 4 {
            self.packed.sort_unstable();
            self.packed.dedup();
            self.packed_out.append(&mut self.packed);
        } else {
            self.general.sort_unstable();
            self.general.dedup();
            self.general_out.append(&mut self.general);
        }
    }

    /// Sorts, deduplicates and returns the distinct tuples.
    pub fn finish(mut self) -> Vec<Vec<Value>> {
        self.flush();
        if self.k <= 4 {
            self.packed_out.sort_unstable();
            self.packed_out.dedup();
            let k = self.k;
            self.packed_out
                .iter()
                .map(|&key| Self::unpack(k, key))
                .collect()
        } else {
            self.general_out.sort_unstable();
            self.general_out.dedup();
            self.general_out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn two_path_enumerates_witnesses() {
        let r = rel(&[(0, 10), (1, 10), (2, 11)]);
        let s = rel(&[(5, 10), (6, 11), (7, 12)]);
        let mut seen = Vec::new();
        two_path_for_each(&r, &s, |x, y, z| seen.push((x, y, z)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 10, 5), (1, 10, 5), (2, 11, 6)]);
    }

    #[test]
    fn two_path_empty_side() {
        let r = rel(&[(0, 1)]);
        let s = rel(&[]);
        let mut count = 0;
        two_path_for_each(&r, &s, |_, _, _| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn star_k1_is_identity() {
        let r = rel(&[(0, 5), (3, 5), (1, 7)]);
        let out = star_join_project(&[r]);
        assert_eq!(out, vec![vec![0], vec![1], vec![3]]);
    }

    #[test]
    fn star_k2_matches_two_path() {
        let r = rel(&[(0, 0), (1, 0), (2, 1)]);
        let s = rel(&[(8, 0), (9, 1)]);
        let out = star_join_project(&[r.clone(), s.clone()]);
        let mut expected = BTreeSet::new();
        two_path_for_each(&r, &s, |x, _, z| {
            expected.insert(vec![x, z]);
        });
        assert_eq!(out, expected.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn star_k3_product_per_y() {
        // y=0 shared by all three relations with 2, 1, 2 inverted entries.
        let r1 = rel(&[(0, 0), (1, 0)]);
        let r2 = rel(&[(5, 0)]);
        let r3 = rel(&[(7, 0), (8, 0)]);
        assert_eq!(full_join_count(&[r1.clone(), r2.clone(), r3.clone()]), 4);
        let out = star_join_project(&[r1, r2, r3]);
        assert_eq!(
            out,
            vec![vec![0, 5, 7], vec![0, 5, 8], vec![1, 5, 7], vec![1, 5, 8],]
        );
    }

    #[test]
    fn star_requires_shared_y_everywhere() {
        let r1 = rel(&[(0, 0)]);
        let r2 = rel(&[(1, 1)]); // no common y
        assert_eq!(full_join_count(&[r1.clone(), r2.clone()]), 0);
        assert!(star_join_project(&[r1, r2]).is_empty());
    }

    #[test]
    fn duplicates_in_projection_are_removed() {
        // (x=0, z=9) has two witnesses y=0 and y=1.
        let r = rel(&[(0, 0), (0, 1)]);
        let s = rel(&[(9, 0), (9, 1)]);
        let out = star_join_project(&[r.clone(), s.clone()]);
        assert_eq!(out, vec![vec![0, 9]]);
        assert_eq!(full_join_count(&[r, s]), 2);
    }

    proptest! {
        /// star_join_project for k=2 must equal the brute-force nested-loop
        /// join-project.
        #[test]
        fn two_path_matches_bruteforce(
            r_edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
            s_edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
        ) {
            let r = rel(&r_edges);
            let s = rel(&s_edges);
            let mut brute = BTreeSet::new();
            for &(x, y) in &r_edges {
                for &(z, y2) in &s_edges {
                    if y == y2 {
                        brute.insert(vec![x, z]);
                    }
                }
            }
            let out = star_join_project(&[r, s]);
            prop_assert_eq!(out, brute.into_iter().collect::<Vec<_>>());
        }

        /// full_join_count equals the actual enumeration length.
        #[test]
        fn count_matches_enumeration(
            r_edges in proptest::collection::vec((0u32..15, 0u32..15), 0..40),
            s_edges in proptest::collection::vec((0u32..15, 0u32..15), 0..40),
            t_edges in proptest::collection::vec((0u32..15, 0u32..15), 0..40),
        ) {
            let rels = vec![rel(&r_edges), rel(&s_edges), rel(&t_edges)];
            let mut n = 0u64;
            star_full_join_for_each(&rels, |_, _| n += 1);
            prop_assert_eq!(full_join_count(&rels), n);
        }
    }
}
