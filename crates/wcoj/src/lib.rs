//! Worst-case optimal join evaluation for the `mmjoin` workspace.
//!
//! Algorithm 1 of the paper delegates its light parts to "any worst-case
//! optimal join algorithm" (line 3). For star queries
//! `Q*_k(x1,…,xk) = R1(x1,y), …, Rk(xk,y)` the worst-case optimal plan is:
//! intersect the `y` columns with a k-way leapfrog ([`leapfrog_intersect`]),
//! then, per surviving `y`, emit the Cartesian product of the inverted lists
//! `L1[y] × … × Lk[y]`. That runs in `O(Σ N_i + |OUT⋈|)` — the
//! `O(|D|^{ρ*})` bound of Proposition 1 specialised to star queries.
//!
//! The crate also evaluates the batched boolean-set-intersection query
//! `Qbatch(x, z) = R(x, y), S(z, y), T(x, z)` of §3.3, whose worst-case
//! optimal plan seeds from the (small) batch relation `T` and verifies each
//! candidate with an adaptive sorted-set intersection.

pub mod engine;
pub mod leapfrog;
pub mod star;
pub mod triangle;

pub use engine::WcojEngine;
pub use leapfrog::{leapfrog_intersect, LeapfrogIter};
pub use star::{
    full_join_count, star_full_join_for_each, star_join_project, two_path_for_each,
    ProjectionAccumulator,
};
pub use triangle::{batch_filter_exists, batch_filter_witnesses};
