//! K-way leapfrog intersection of sorted lists — the core search primitive
//! of Leapfrog Triejoin (Veldhuizen, ICDT 2014), which the paper cites as
//! its worst-case optimal building block.

use mmjoin_storage::Value;

/// Iterator over the intersection of `k` sorted, duplicate-free lists using
/// the leapfrog strategy: repeatedly seek the lagging iterator forward (via
/// galloping search) to the current maximum. Complexity is
/// `O(k · n_min · log(n_max / n_min))`, worst-case optimal for intersection.
pub struct LeapfrogIter<'a> {
    lists: Vec<&'a [Value]>,
    /// Cursor into each list.
    pos: Vec<usize>,
    exhausted: bool,
}

impl<'a> LeapfrogIter<'a> {
    /// Creates a leapfrog iterator over `lists`. Each list must be sorted
    /// ascending and duplicate-free.
    pub fn new(lists: Vec<&'a [Value]>) -> Self {
        let exhausted = lists.is_empty() || lists.iter().any(|l| l.is_empty());
        let pos = vec![0; lists.len()];
        Self {
            lists,
            pos,
            exhausted,
        }
    }

    /// Galloping seek: advance cursor `i` to the first element `>= target`.
    fn seek(&mut self, i: usize, target: Value) {
        let list = self.lists[i];
        let mut lo = self.pos[i];
        if lo >= list.len() {
            self.exhausted = true;
            return;
        }
        if list[lo] >= target {
            return;
        }
        let mut step = 1usize;
        let mut hi = lo + 1;
        while hi < list.len() && list[hi] < target {
            lo = hi;
            hi = lo + step;
            step *= 2;
        }
        let hi = hi.min(list.len());
        let off = list[lo..hi].partition_point(|&v| v < target);
        self.pos[i] = lo + off;
        if self.pos[i] >= list.len() {
            self.exhausted = true;
        }
    }
}

impl Iterator for LeapfrogIter<'_> {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        if self.exhausted {
            return None;
        }
        let k = self.lists.len();
        if k == 1 {
            // Degenerate single-list case.
            let list = self.lists[0];
            if self.pos[0] < list.len() {
                let v = list[self.pos[0]];
                self.pos[0] += 1;
                return Some(v);
            }
            self.exhausted = true;
            return None;
        }
        loop {
            // Current maximum across cursors.
            let mut max = 0 as Value;
            for i in 0..k {
                if self.pos[i] >= self.lists[i].len() {
                    self.exhausted = true;
                    return None;
                }
                max = max.max(self.lists[i][self.pos[i]]);
            }
            // Leapfrog every lagging cursor up to max.
            let mut all_equal = true;
            for i in 0..k {
                if self.lists[i][self.pos[i]] < max {
                    self.seek(i, max);
                    if self.exhausted {
                        return None;
                    }
                    all_equal = false;
                }
            }
            if all_equal {
                // Emit and advance one cursor to make progress.
                self.pos[0] += 1;
                if self.pos[0] >= self.lists[0].len() {
                    self.exhausted = true;
                }
                return Some(max);
            }
        }
    }
}

/// Materialized k-way leapfrog intersection.
///
/// ```
/// use mmjoin_wcoj::leapfrog_intersect;
/// let a = [1u32, 3, 5, 7];
/// let b = [2u32, 3, 4, 7];
/// let c = [3u32, 7, 9];
/// assert_eq!(leapfrog_intersect(&[&a, &b, &c]), vec![3, 7]);
/// ```
pub fn leapfrog_intersect(lists: &[&[Value]]) -> Vec<Value> {
    LeapfrogIter::new(lists.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn two_way_intersection() {
        let a = [1, 3, 5, 7, 9];
        let b = [2, 3, 4, 7, 10];
        assert_eq!(leapfrog_intersect(&[&a, &b]), vec![3, 7]);
    }

    #[test]
    fn three_way_intersection() {
        let a = [1, 2, 3, 4, 5, 6, 7, 8];
        let b = [2, 4, 6, 8, 10];
        let c = [3, 4, 8, 12];
        assert_eq!(leapfrog_intersect(&[&a, &b, &c]), vec![4, 8]);
    }

    #[test]
    fn disjoint_lists() {
        let a = [1, 2, 3];
        let b = [4, 5, 6];
        assert!(leapfrog_intersect(&[&a, &b]).is_empty());
    }

    #[test]
    fn single_list_passthrough() {
        let a = [5, 9, 12];
        assert_eq!(leapfrog_intersect(&[&a]), vec![5, 9, 12]);
    }

    #[test]
    fn empty_inputs() {
        let a = [1, 2];
        let empty: [Value; 0] = [];
        assert!(leapfrog_intersect(&[&a, &empty]).is_empty());
        assert!(leapfrog_intersect(&[]).is_empty());
    }

    #[test]
    fn identical_lists() {
        let a = [2, 4, 6];
        assert_eq!(leapfrog_intersect(&[&a, &a, &a]), vec![2, 4, 6]);
    }

    #[test]
    fn skewed_lengths() {
        let long: Vec<Value> = (0..10_000).collect();
        let short = [0, 5_000, 9_999, 20_000];
        assert_eq!(leapfrog_intersect(&[&short, &long]), vec![0, 5_000, 9_999]);
    }

    proptest! {
        #[test]
        fn matches_btreeset_semantics(
            a in proptest::collection::btree_set(0u32..500, 0..100),
            b in proptest::collection::btree_set(0u32..500, 0..100),
            c in proptest::collection::btree_set(0u32..500, 0..100),
        ) {
            let av: Vec<Value> = a.iter().copied().collect();
            let bv: Vec<Value> = b.iter().copied().collect();
            let cv: Vec<Value> = c.iter().copied().collect();
            let expected: Vec<Value> = a
                .intersection(&b)
                .copied()
                .collect::<BTreeSet<_>>()
                .intersection(&c)
                .copied()
                .collect();
            prop_assert_eq!(leapfrog_intersect(&[&av, &bv, &cv]), expected);
        }
    }
}
