//! Seeded-violation self-test.
//!
//! `mmjoin-lint self-test` proves, on every CI run, that each rule (a)
//! fires on a seeded violation at the expected line, and (b) stays
//! silent on the corrected / `lint:allow`-justified form. A lint whose
//! rules silently stopped matching — a tokenizer regression, a renamed
//! idiom — would otherwise *pass* CI by finding nothing; the self-test
//! turns that failure mode into a red build.

use crate::rules::check_file;
use crate::scan::scan_str;

struct Case {
    name: &'static str,
    /// Pseudo-path, chosen so path-scoped rules apply.
    path: &'static str,
    src: &'static str,
    /// Rule expected to fire, with 1-based lines.
    rule: &'static str,
    expect_lines: &'static [usize],
    /// Corrected or justified twin that must scan clean; when it carries
    /// a `lint:allow`, the allowance must be recorded.
    fixed_src: &'static str,
    fixed_records_allowance: bool,
}

const CASES: &[Case] = &[
    Case {
        name: "unsafe block without SAFETY",
        path: "crates/seed/src/lib.rs",
        src: "fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n",
        rule: "unsafe-safety",
        expect_lines: &[2],
        fixed_src: "fn f(p: *const u32) -> u32 {\n    // SAFETY: callers pass a live, aligned pointer (checked at the FFI edge).\n    unsafe { *p }\n}\n",
        fixed_records_allowance: false,
    },
    Case {
        name: "unsafe fn without # Safety doc",
        path: "crates/seed/src/lib.rs",
        src: "/// Reads a raw slot.\npub unsafe fn read_slot(p: *const u32) -> u32 {\n    *p\n}\n",
        rule: "unsafe-safety",
        expect_lines: &[2],
        fixed_src: "/// Reads a raw slot.\n///\n/// # Safety\n/// `p` must be valid for reads and aligned.\npub unsafe fn read_slot(p: *const u32) -> u32 {\n    *p\n}\n",
        fixed_records_allowance: false,
    },
    Case {
        name: "thread::spawn outside executor/net",
        path: "crates/seed/src/lib.rs",
        src: "fn f() {\n    std::thread::spawn(|| {});\n}\n",
        rule: "thread-spawn",
        expect_lines: &[2],
        fixed_src: "fn f() {\n    // lint:allow(thread-spawn): seeded self-test exercising the escape hatch.\n    std::thread::spawn(|| {});\n}\n",
        fixed_records_allowance: true,
    },
    Case {
        name: "lock().unwrap() outside tests",
        path: "crates/seed/src/lib.rs",
        src: "fn f(m: &std::sync::Mutex<u32>) -> u32 {\n    *m.lock()\n        .unwrap()\n}\n",
        rule: "lock-unwrap",
        expect_lines: &[2],
        fixed_src: "fn f(m: &std::sync::Mutex<u32>) -> u32 {\n    *m.lock()\n        .unwrap_or_else(std::sync::PoisonError::into_inner)\n}\n",
        fixed_records_allowance: false,
    },
    Case {
        name: "rwlock read().expect() outside tests",
        path: "crates/seed/src/lib.rs",
        src: "fn f(m: &std::sync::RwLock<u32>) -> u32 {\n    *m.read().expect(\"poisoned\")\n}\n",
        rule: "lock-unwrap",
        expect_lines: &[2],
        fixed_src: "fn f(m: &std::sync::RwLock<u32>) -> u32 {\n    *m.read().unwrap_or_else(std::sync::PoisonError::into_inner)\n}\n",
        fixed_records_allowance: false,
    },
    Case {
        name: "eager Instant::now at a span site",
        path: "crates/seed/src/lib.rs",
        src: "fn f() {\n    let _s = trace::span(Stage::Exec, label(Instant::now()));\n}\n",
        rule: "span-alloc",
        expect_lines: &[2],
        fixed_src: "fn f() {\n    let _s = trace::span_dyn(Stage::Exec, || label(Instant::now()));\n}\n",
        fixed_records_allowance: false,
    },
    Case {
        name: "eager format! at a span site",
        path: "crates/seed/src/lib.rs",
        src: "fn f(n: &str) {\n    let _s = trace::span(Stage::Maintain, format!(\"update {n}\"));\n}\n",
        rule: "span-alloc",
        expect_lines: &[2],
        fixed_src: "fn f(n: &str) {\n    let _s = trace::span_dyn(Stage::Maintain, || format!(\"update {n}\"));\n}\n",
        fixed_records_allowance: false,
    },
    Case {
        name: "SeqCst without justification",
        path: "crates/seed/src/lib.rs",
        src: "fn f(a: &AtomicBool) {\n    a.store(true, Ordering::SeqCst);\n}\n",
        rule: "seqcst",
        expect_lines: &[2],
        fixed_src: "fn f(a: &AtomicBool) {\n    // lint:allow(seqcst): one-shot latch; simplicity over the last nanosecond.\n    a.store(true, Ordering::SeqCst);\n}\n",
        fixed_records_allowance: true,
    },
    Case {
        name: "static mut without justification",
        path: "crates/seed/src/lib.rs",
        src: "static mut COUNTER: u64 = 0;\n",
        rule: "static-mut",
        expect_lines: &[1],
        fixed_src: "// lint:allow(static-mut): seeded self-test exercising the escape hatch.\nstatic mut COUNTER: u64 = 0;\n",
        fixed_records_allowance: true,
    },
];

/// Runs every seeded case; returns a human summary or the first failure.
pub fn run() -> Result<String, String> {
    let mut checked = 0;
    for case in CASES {
        let out = check_file(&scan_str(case.path, case.src));
        let got: Vec<usize> = out
            .findings
            .iter()
            .filter(|v| v.rule == case.rule)
            .map(|v| v.line)
            .collect();
        if got != case.expect_lines {
            return Err(format!(
                "self-test '{}': expected {} at lines {:?}, got {:?} (all findings: {:?})",
                case.name, case.rule, case.expect_lines, got, out.findings
            ));
        }
        let stray: Vec<_> = out
            .findings
            .iter()
            .filter(|v| v.rule != case.rule)
            .collect();
        if !stray.is_empty() {
            return Err(format!(
                "self-test '{}': unrelated findings on the seed: {stray:?}",
                case.name
            ));
        }
        let fixed = check_file(&scan_str(case.path, case.fixed_src));
        if !fixed.findings.is_empty() {
            return Err(format!(
                "self-test '{}': corrected form still fires: {:?}",
                case.name, fixed.findings
            ));
        }
        if case.fixed_records_allowance
            && !fixed
                .allowances
                .iter()
                .any(|a| a.rule == case.rule && !a.reason.is_empty())
        {
            return Err(format!(
                "self-test '{}': lint:allow({}) was not recorded as an allowance",
                case.name, case.rule
            ));
        }
        checked += 1;
    }
    // Every advertised rule must have at least one seeded case.
    for rule in crate::rules::RULES {
        if !CASES.iter().any(|c| c.rule == rule.name) {
            return Err(format!(
                "self-test: rule '{}' has no seeded case",
                rule.name
            ));
        }
    }
    Ok(format!(
        "self-test ok: {checked} seeded cases across {} rules (fire + corrected/allowed)",
        crate::rules::RULES.len()
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn self_test_passes() {
        super::run().unwrap();
    }
}
