//! `mmjoin-lint` — the workspace's repo-specific static-analysis pass.
//!
//! PRs 8–9 made the hot path fast by going unsafe (SIMD intrinsics, the
//! raw-pointer strided GEMM kernels, the chunk-claim tile scheduler, the
//! lock-free service metrics). The invariants that keep that sound —
//! every `unsafe` site carries its bounds argument, all parallelism
//! routes through the shared executor, every lock recovers from
//! poisoning, disabled tracing costs one relaxed atomic — previously
//! lived only in prose. This crate machine-checks them on every CI run,
//! the way the bench gates machine-check performance.
//!
//! * [`scan`] — line-oriented tokenizer separating code from comments,
//!   strings and test regions;
//! * [`rules`] — the six rule passes plus the
//!   `// lint:allow(<rule>): <reason>` escape hatch;
//! * [`report`] — the JSON artifact CI uploads and `ci/check_lint.py`
//!   validates;
//! * [`selftest`] — seeded violations proving each rule still fires.
//!
//! Run it with `cargo run -p mmjoin-lint -- check` (see `README.md`).

pub mod report;
pub mod rules;
pub mod scan;
pub mod selftest;

use rules::Outcome;
use std::path::{Path, PathBuf};

/// Directories scanned, relative to the workspace root. `shims/` is
/// excluded on purpose: it vendors stand-ins for *external* crates and
/// is not governed by this repo's internal contracts.
pub const SCAN_DIRS: &[&str] = &["crates", "tests", "examples"];

/// Recursively collects `.rs` files under `root`'s scan dirs, skipping
/// build output. Paths come back sorted for deterministic reports.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        let top = root.join(dir);
        if top.is_dir() {
            walk(&top, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Scans the whole workspace under `root`, returning the merged outcome
/// and the number of files scanned.
pub fn check_workspace(root: &Path) -> std::io::Result<(Outcome, usize)> {
    let files = collect_files(root)?;
    let mut out = Outcome::default();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        out.merge(rules::check_file(&scan::scan_str(&rel, &src)));
    }
    // Deterministic ordering: by path, then line, then rule.
    out.findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out.allowances
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok((out, files.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dogfood: the lint runs clean over its own workspace. This is the
    /// same assertion CI makes via `mmjoin-lint -- check`; having it in
    /// `cargo test` keeps local development honest too.
    #[test]
    fn workspace_is_clean() {
        // crates/lint/ → workspace root is two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap()
            .to_path_buf();
        let (out, files) = check_workspace(&root).unwrap();
        assert!(
            files > 50,
            "expected to scan the whole workspace, saw {files}"
        );
        assert!(
            out.findings.is_empty(),
            "workspace has lint violations:\n{}",
            out.findings
                .iter()
                .map(|v| format!("  {}:{}: [{}] {}", v.path, v.line, v.rule, v.message))
                .collect::<Vec<_>>()
                .join("\n")
        );
        // The audit trail is populated (the workspace legitimately uses
        // SeqCst shutdown latches and bench client threads via allows).
        assert!(!out.allowances.is_empty());
    }
}
