//! Line-oriented Rust source scanner.
//!
//! The rules in [`crate::rules`] are textual contracts ("an `unsafe`
//! block must be preceded by a `// SAFETY:` comment"), so the scanner's
//! job is exactly the split a human reviewer performs: which characters
//! of each line are *code*, which are *comment*, and which lines live
//! inside `#[cfg(test)]` / `#[test]` regions. String and char literal
//! contents are blanked out of the code channel (their delimiters stay,
//! so tokens don't merge), which is what lets the lint's own self-test
//! snippets — Rust code inside string literals — scan cleanly.
//!
//! This is deliberately not a full parser: it handles the constructs the
//! workspace actually uses (nested block comments, raw strings with
//! hashes, byte strings, char literals vs. lifetimes) and nothing more.

/// One scanned source line, split into its code and comment channels.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code characters with comments removed and literal contents
    /// blanked to spaces (delimiters preserved).
    pub code: String,
    /// Comment text on this line (line, block and doc comments alike),
    /// without the `//` / `/*` markers.
    pub comment: String,
    /// A comment occurs on this line, even one with empty text (a bare
    /// `///` separator inside a doc block must not break comment-block
    /// adjacency scans the way a truly blank line does).
    pub has_comment: bool,
    /// The comment is a doc comment (`///`, `//!`, `/** … */`).
    pub is_doc: bool,
    /// The line is attribute-only code: `#[…]` / `#![…]`, including the
    /// continuation lines of a multi-line attribute.
    pub is_attr: bool,
    /// The line sits inside a `#[cfg(test)]` / `#[test]` brace region.
    pub in_test: bool,
}

impl Line {
    /// The line carries no code tokens (blank, or comment/blank only).
    pub fn code_is_empty(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// The line's only code is an attribute (`#[…]` / `#![…]`).
    pub fn is_attribute_only(&self) -> bool {
        let t = self.code.trim();
        (t.starts_with("#[") || t.starts_with("#![")) && t.ends_with(']')
    }
}

/// A scanned file: normalized relative path + per-line channels.
#[derive(Debug)]
pub struct SourceFile {
    /// `/`-separated path relative to the scan root.
    pub path: String,
    pub lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    /// Nested depth, and whether the outermost opener was `/**`/`/*!`.
    BlockComment(u32, bool),
    Str,
    /// Number of `#` marks that close the raw string.
    RawStr(u32),
}

/// Scans one file's source text. `path` should already be normalized
/// (forward slashes, relative to the workspace root).
pub fn scan_str(path: &str, src: &str) -> SourceFile {
    let mut lines: Vec<Line> = Vec::new();
    let mut state = State::Code;
    for raw in src.lines() {
        let mut line = Line::default();
        // A block comment flowing in from the previous line counts as a
        // comment on this one even if it closes immediately.
        if matches!(state, State::BlockComment(..)) {
            line.has_comment = true;
            if let State::BlockComment(_, true) = state {
                line.is_doc = true;
            }
        }
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Code => match c {
                    '/' if chars.get(i + 1) == Some(&'/') => {
                        // Line comment (doc if `///` or `//!`).
                        let is_doc = matches!(chars.get(i + 2), Some('/') | Some('!'))
                            && chars.get(i + 3) != Some(&'/'); // `////…` separators are not doc
                        let body_start = if is_doc { i + 3 } else { i + 2 };
                        if !line.comment.is_empty() {
                            line.comment.push(' ');
                        }
                        line.comment
                            .extend(chars[body_start.min(chars.len())..].iter());
                        line.has_comment = true;
                        line.is_doc = line.is_doc || is_doc;
                        i = chars.len();
                        continue;
                    }
                    '/' if chars.get(i + 1) == Some(&'*') => {
                        let is_doc = matches!(chars.get(i + 2), Some('*') | Some('!'))
                            && chars.get(i + 3) != Some(&'/'); // `/**/` is empty, not doc
                        state = State::BlockComment(1, is_doc);
                        line.has_comment = true;
                        line.is_doc = line.is_doc || is_doc;
                        i += 2;
                        continue;
                    }
                    '"' => {
                        // Check for a raw-string opener ending here: the
                        // preceding code chars are `r`/`br` plus hashes.
                        let mut j = line.code.len();
                        let bytes = line.code.as_bytes();
                        let mut hashes = 0u32;
                        while j > 0 && bytes[j - 1] == b'#' {
                            hashes += 1;
                            j -= 1;
                        }
                        let is_raw = j > 0
                            && bytes[j - 1] == b'r'
                            && (hashes > 0 || {
                                // Bare `r"` — make sure the `r` is not the
                                // tail of an identifier like `var"`.
                                j < 2
                                    || !bytes[j - 2].is_ascii_alphanumeric() && bytes[j - 2] != b'_'
                            });
                        line.code.push('"');
                        state = if is_raw {
                            State::RawStr(hashes)
                        } else {
                            State::Str
                        };
                        i += 1;
                        continue;
                    }
                    '\'' => {
                        // Char literal vs. lifetime: `'\…'` and `'x'` are
                        // literals; `'ident` (no closing quote right
                        // after one char) is a lifetime or loop label.
                        let next = chars.get(i + 1);
                        let after = chars.get(i + 2);
                        let is_char_lit =
                            matches!(next, Some('\\')) || (next.is_some() && after == Some(&'\''));
                        if is_char_lit {
                            line.code.push('\'');
                            i += 1;
                            // Consume the literal body up to the closing quote.
                            while i < chars.len() {
                                if chars[i] == '\\' {
                                    line.code.push(' ');
                                    i += 2;
                                    line.code.push(' ');
                                    continue;
                                }
                                if chars[i] == '\'' {
                                    line.code.push('\'');
                                    i += 1;
                                    break;
                                }
                                line.code.push(' ');
                                i += 1;
                            }
                        } else {
                            line.code.push('\'');
                            i += 1;
                        }
                        continue;
                    }
                    _ => {
                        line.code.push(c);
                        i += 1;
                    }
                },
                State::BlockComment(depth, is_doc) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1, is_doc)
                        };
                        i += 2;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::BlockComment(depth + 1, is_doc);
                        i += 2;
                    } else {
                        line.comment.push(c);
                        line.is_doc = line.is_doc || is_doc;
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        line.code.push(' ');
                        if i + 1 < chars.len() {
                            line.code.push(' ');
                        }
                        i += 2;
                    } else if c == '"' {
                        line.code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let h = hashes as usize;
                        if chars[i + 1..].iter().take(h).filter(|&&x| x == '#').count() == h {
                            line.code.push('"');
                            for _ in 0..h {
                                line.code.push('#');
                            }
                            state = State::Code;
                            i += 1 + h;
                            continue;
                        }
                    }
                    line.code.push(' ');
                    i += 1;
                }
            }
        }
        // A block comment continuing to the next line keeps its doc flag;
        // everything else resets per line.
        lines.push(line);
    }
    mark_attr_lines(&mut lines);
    mark_test_regions(&mut lines);
    SourceFile {
        path: path.to_string(),
        lines,
    }
}

/// Marks attribute-only lines, including every line of a multi-line
/// attribute (`#[cfg_attr(\n    …\n)]`): rules that scan upward over
/// "decoration" lines (SAFETY-comment adjacency, `lint:allow` scope)
/// must skip those continuations the same way they skip one-liners.
fn mark_attr_lines(lines: &mut [Line]) {
    let mut depth: i32 = 0;
    for line in lines.iter_mut() {
        let t = line.code.trim();
        if depth > 0 {
            // Continuation of an open attribute.
            line.is_attr = true;
        } else if (t.starts_with("#[") || t.starts_with("#![")) && !t.is_empty() {
            // Attribute-only start line: nothing after the attribute's
            // closing bracket (a `#[inline] fn f()` line is code).
            let balanced_and_bare = {
                let mut d = 0i32;
                let mut end = t.len();
                for (pos, c) in t.char_indices() {
                    match c {
                        '[' => d += 1,
                        ']' => {
                            d -= 1;
                            if d == 0 {
                                end = pos + 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                d <= 0 && t[end.min(t.len())..].trim().is_empty()
            };
            let opens_multiline = {
                let d: i32 = t
                    .chars()
                    .map(|c| match c {
                        '[' => 1,
                        ']' => -1,
                        _ => 0,
                    })
                    .sum();
                d > 0
            };
            line.is_attr = balanced_and_bare || opens_multiline;
        }
        for c in t.chars() {
            match c {
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
        }
        if depth < 0 {
            depth = 0;
        }
        if !line.is_attr {
            // Only attribute brackets keep the continuation state alive;
            // ordinary code resets it.
            depth = 0;
        }
    }
}

/// Marks the brace region following `#[cfg(test)]` / `#[test]` /
/// `#[bench]` attributes: from the attribute to the close of the first
/// `{…}` block opened after it. This is how the workspace writes test
/// code (a trailing `mod tests { … }` per file, `#[test]` fns inside),
/// and rules that exempt tests key off it.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut armed = false;
    // Depth at which the active test region was opened; region is live
    // while Some and depth > that value.
    let mut region_floor: Option<i64> = None;
    for line in lines.iter_mut() {
        let code = line.code.clone();
        if region_floor.is_none() && contains_test_attr(&code) {
            armed = true;
        }
        if armed || region_floor.is_some() {
            line.in_test = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if armed {
                        region_floor = Some(depth);
                        armed = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(floor) = region_floor {
                        if depth <= floor {
                            region_floor = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

fn contains_test_attr(code: &str) -> bool {
    ["#[cfg(test)]", "#[test]", "#[bench]"]
        .iter()
        .any(|pat| code.contains(pat))
}

/// True when `needle` occurs in `hay` as a whole word (neither neighbor
/// is an identifier character).
pub fn contains_word(hay: &str, needle: &str) -> bool {
    find_word(hay, needle).is_some()
}

/// Byte offset of the first whole-word occurrence of `needle` in `hay`.
pub fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_separated() {
        let f = scan_str(
            "x.rs",
            "let a = \"unsafe { }\"; // SAFETY: not really\nunsafe { go() }\n",
        );
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].comment.contains("SAFETY:"));
        assert!(f.lines[1].code.contains("unsafe"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scan_str(
            "x.rs",
            "let s = r#\"thread::spawn(\"inner\")\"#;\nlet t = 1;\n",
        );
        assert!(!f.lines[0].code.contains("thread::spawn"));
        assert!(f.lines[1].code.contains("let t"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let f = scan_str(
            "x.rs",
            "fn f<'a>(x: &'a str) -> char { 'x' }\nlet q = '\\'';\n",
        );
        assert!(f.lines[0].code.contains("&'a str"));
        assert!(!f.lines[0].code.contains('x') || f.lines[0].code.contains("x:"));
        assert!(f.lines[1].code.contains("let q"));
    }

    #[test]
    fn nested_block_comments_end_correctly() {
        let f = scan_str("x.rs", "/* a /* b */ still comment */ let x = 1;\n");
        assert!(f.lines[0].code.contains("let x"));
        assert!(f.lines[0].comment.contains("still comment"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let f = scan_str("x.rs", "/* one\ntwo */ code();\n");
        assert!(f.lines[0].code_is_empty());
        assert!(f.lines[1].code.contains("code()"));
    }

    #[test]
    fn test_regions_cover_the_mod_block() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\nfn after() {}\n";
        let f = scan_str("x.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test); // the attribute line itself
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test); // closing brace
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("unsafe {", "unsafe"));
        assert!(!contains_word("unsafely(", "unsafe"));
        assert!(!contains_word("an_unsafe_thing", "unsafe"));
    }
}
