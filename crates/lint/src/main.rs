//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! mmjoin-lint check [--root <dir>] [--json <path>] [--quiet]
//! mmjoin-lint self-test
//! mmjoin-lint rules
//! ```
//!
//! `check` exits non-zero when any rule fires; `--json` writes the
//! report artifact CI uploads and `ci/check_lint.py` validates.
//! `self-test` proves every rule fires on seeded violations (and stays
//! silent on the corrected forms) — a lint that finds nothing because
//! its tokenizer regressed must fail CI, not pass it.

use mmjoin_lint::{check_workspace, report, rules::RULES, selftest};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: mmjoin-lint <check [--root <dir>] [--json <path>] [--quiet] | self-test | rules>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("self-test") => match selftest::run() {
            Ok(summary) => {
                println!("{summary}");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("mmjoin-lint: {err}");
                ExitCode::FAILURE
            }
        },
        Some("rules") => {
            for rule in RULES {
                println!("{:14} {}", rule.name, rule.summary);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage(),
            },
            "--json" => match it.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--quiet" => quiet = true,
            _ => return usage(),
        }
    }
    // Default to the workspace root even when invoked from a crate dir
    // via `cargo run`: walk up until Cargo.toml + crates/ both exist.
    if root.as_os_str() == "." && !root.join("crates").is_dir() {
        let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        while !cur.join("crates").is_dir() {
            if !cur.pop() {
                break;
            }
        }
        if cur.join("crates").is_dir() {
            root = cur;
        }
    }
    let (out, files) = match check_workspace(&root) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("mmjoin-lint: scanning {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };
    // A clean verdict over zero files is a misconfigured root, not a
    // clean workspace — fail loudly instead of letting CI pass vacuously.
    if files == 0 {
        eprintln!(
            "mmjoin-lint: no .rs files under {} (wrong --root?)",
            root.display()
        );
        return ExitCode::FAILURE;
    }
    if let Some(path) = &json {
        let rendered = report::render(&root.display().to_string(), files, &out);
        if let Err(err) = std::fs::write(path, rendered) {
            eprintln!("mmjoin-lint: writing {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    }
    for v in &out.findings {
        println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
        println!("    {}", v.snippet);
    }
    if !quiet {
        println!(
            "mmjoin-lint: {} files, {} violation(s), {} justified allowance(s)",
            files,
            out.findings.len(),
            out.allowances.len()
        );
    }
    if out.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
