//! The repo-specific rule set.
//!
//! Each rule machine-checks an invariant the ROADMAP's north star
//! depends on and that previously lived only in prose:
//!
//! | rule | contract |
//! |---|---|
//! | `unsafe-safety`  | every `unsafe` site carries a `// SAFETY:` comment (or `# Safety` doc section for `unsafe fn`/`impl`/`trait`) stating the bounds/aliasing argument |
//! | `thread-spawn`   | no `std::thread::spawn`/`scope`/`Builder` outside `crates/executor` and `crates/net` — parallelism routes through the executor's token arbitration |
//! | `lock-unwrap`    | no `.unwrap()`/`.expect()` on `Mutex`/`RwLock`/`Condvar` results outside tests — use the `PoisonError::into_inner` recovery idiom |
//! | `span-alloc`     | no `Instant::now()` or heap allocation evaluated eagerly at a span-site call outside `crates/obs` — disabled tracing must cost one relaxed atomic (use `span_dyn` for lazy labels) |
//! | `seqcst`         | `Ordering::SeqCst` needs an inline justification (`lint:allow`) — the workspace default is the weakest ordering that is argued correct |
//! | `static-mut`     | `static mut` needs an inline justification (`lint:allow`) — it is almost always a bug waiting for Miri |
//!
//! Any finding can be suppressed in place with
//! `// lint:allow(<rule>): <reason>` on the offending line or the
//! line(s) directly above it; the reason is mandatory and every
//! suppression is recorded in the JSON report as an audit trail.

use crate::scan::{contains_word, SourceFile};

/// Static description of one rule (for `mmjoin-lint rules` and the
/// report's rule table).
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
}

/// All rules, in the order they run.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "unsafe-safety",
        summary: "unsafe blocks/fns/impls must carry a // SAFETY: comment or # Safety doc \
                  section stating the bounds/aliasing argument",
    },
    RuleInfo {
        name: "thread-spawn",
        summary: "no std::thread::{spawn,scope,Builder} outside crates/executor and \
                  crates/net; parallelism goes through the shared executor",
    },
    RuleInfo {
        name: "lock-unwrap",
        summary: "no .unwrap()/.expect() on Mutex/RwLock/Condvar results outside tests; \
                  recover with unwrap_or_else(PoisonError::into_inner)",
    },
    RuleInfo {
        name: "span-alloc",
        summary: "no Instant::now() or heap allocation evaluated eagerly at span sites \
                  outside crates/obs; disabled tracing is one relaxed atomic",
    },
    RuleInfo {
        name: "seqcst",
        summary: "Ordering::SeqCst needs an inline lint:allow justification",
    },
    RuleInfo {
        name: "static-mut",
        summary: "static mut needs an inline lint:allow justification",
    },
];

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    pub snippet: String,
}

/// One `lint:allow` suppression that matched a would-be finding.
#[derive(Debug, Clone)]
pub struct Allowance {
    pub rule: &'static str,
    pub path: String,
    /// 1-based line of the suppressed site (not of the comment).
    pub line: usize,
    pub reason: String,
}

/// Everything one scan of a file produced.
#[derive(Debug, Default)]
pub struct Outcome {
    pub findings: Vec<Finding>,
    pub allowances: Vec<Allowance>,
}

impl Outcome {
    pub fn merge(&mut self, other: Outcome) {
        self.findings.extend(other.findings);
        self.allowances.extend(other.allowances);
    }
}

/// Runs every rule over one scanned file.
pub fn check_file(f: &SourceFile) -> Outcome {
    let mut out = Outcome::default();
    rule_unsafe_safety(f, &mut out);
    rule_thread_spawn(f, &mut out);
    rule_lock_unwrap(f, &mut out);
    rule_span_alloc(f, &mut out);
    rule_needs_justification(f, &mut out, "seqcst", "SeqCst", false);
    rule_needs_justification(f, &mut out, "static-mut", "static mut", true);
    out
}

/// Whole-file test exemption: the integration-test tree and bench
/// harnesses (stress-client code is test scaffolding, not served code).
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
}

/// Reason attached to a `lint:allow(<rule>)` covering line `idx`: on the
/// line itself or on comment/attribute lines directly above it.
fn find_allow(f: &SourceFile, idx: usize, rule: &str) -> Option<String> {
    if let Some(r) = parse_allow(&f.lines[idx].comment, rule) {
        return Some(r);
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &f.lines[j];
        let comment_only = l.code_is_empty() && l.has_comment;
        if comment_only || l.is_attr || l.is_attribute_only() {
            if let Some(r) = parse_allow(&l.comment, rule) {
                return Some(r);
            }
            continue;
        }
        break;
    }
    None
}

/// Parses `lint:allow(rule-a, rule-b): reason` out of a comment,
/// returning the reason when `rule` is listed. A missing or empty reason
/// does not suppress anything — justification is the point.
fn parse_allow(comment: &str, rule: &str) -> Option<String> {
    let start = comment.find("lint:allow(")?;
    let rest = &comment[start + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let listed = rest[..close]
        .split(',')
        .map(str::trim)
        .any(|r| r == rule || r == "all");
    if !listed {
        return None;
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':')?.trim();
    if reason.is_empty() {
        return None;
    }
    Some(reason.to_string())
}

/// Either records a finding or, when an adjacent `lint:allow` covers it,
/// an allowance.
fn push(out: &mut Outcome, f: &SourceFile, idx: usize, rule: &'static str, message: String) {
    if let Some(reason) = find_allow(f, idx, rule) {
        out.allowances.push(Allowance {
            rule,
            path: f.path.clone(),
            line: idx + 1,
            reason,
        });
        return;
    }
    let snippet: String = f.lines[idx].code.trim().chars().take(120).collect();
    out.findings.push(Finding {
        rule,
        path: f.path.clone(),
        line: idx + 1,
        message,
        snippet,
    });
}

// ---------------------------------------------------------------- rule 1

fn rule_unsafe_safety(f: &SourceFile, out: &mut Outcome) {
    for idx in 0..f.lines.len() {
        let code = &f.lines[idx].code;
        if !contains_word(code, "unsafe") {
            continue;
        }
        let is_decl = code.contains("unsafe fn")
            || code.contains("unsafe trait")
            || code.contains("unsafe extern");
        let is_impl = code.contains("unsafe impl");
        if covered_by_safety(f, idx, is_decl || is_impl) {
            continue;
        }
        let kind = if is_decl {
            "unsafe fn/trait"
        } else if is_impl {
            "unsafe impl"
        } else {
            "unsafe block"
        };
        push(
            out,
            f,
            idx,
            "unsafe-safety",
            format!(
                "{kind} without an immediately preceding `// SAFETY:` comment{}",
                if is_decl || is_impl {
                    " (or `# Safety` doc section)"
                } else {
                    ""
                }
            ),
        );
    }
}

/// Scans upward from the `unsafe` line through comments, attributes and
/// (for `unsafe impl` runs) sibling `unsafe impl` lines. A `// SAFETY:`
/// comment covers any site; a doc block containing `# Safety` covers
/// declarations (fn/trait/impl), matching the workspace idiom of
/// documenting the caller contract in rustdoc.
fn covered_by_safety(f: &SourceFile, idx: usize, is_decl_or_impl: bool) -> bool {
    if f.lines[idx].comment.contains("SAFETY:") {
        return true;
    }
    let site_is_impl = f.lines[idx].code.contains("unsafe impl");
    let mut saw_doc_safety = false;
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &f.lines[j];
        let comment_only = l.code_is_empty() && l.has_comment;
        if comment_only {
            if l.comment.contains("SAFETY:") {
                return true;
            }
            if l.is_doc && l.comment.contains("# Safety") {
                saw_doc_safety = true;
            }
            continue;
        }
        if l.is_attr || l.is_attribute_only() {
            continue;
        }
        // Twin `unsafe impl Send/Sync` blocks share one SAFETY comment.
        if site_is_impl && l.code.contains("unsafe impl") {
            if l.comment.contains("SAFETY:") {
                return true;
            }
            continue;
        }
        break;
    }
    is_decl_or_impl && saw_doc_safety
}

// ---------------------------------------------------------------- rule 2

fn rule_thread_spawn(f: &SourceFile, out: &mut Outcome) {
    if is_test_path(&f.path)
        || f.path.starts_with("crates/executor/")
        || f.path.starts_with("crates/net/")
    {
        return;
    }
    for (idx, line) in f.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in ["thread::spawn", "thread::scope", "thread::Builder"] {
            if line.code.contains(pat) {
                push(
                    out,
                    f,
                    idx,
                    "thread-spawn",
                    format!(
                        "`{pat}` outside crates/executor and crates/net; route parallelism \
                         through the shared executor's token arbitration"
                    ),
                );
                break;
            }
        }
    }
}

// ---------------------------------------------------------------- rule 3

/// Flattens the file's code channel into one string with a byte→line
/// map, so call chains split across lines (`.lock()\n.unwrap()`) still
/// match.
fn flatten(f: &SourceFile) -> (String, Vec<usize>) {
    let mut flat = String::new();
    let mut line_of = Vec::new();
    for (idx, line) in f.lines.iter().enumerate() {
        for _ in 0..line.code.len() + 1 {
            line_of.push(idx);
        }
        flat.push_str(&line.code);
        flat.push('\n');
    }
    (flat, line_of)
}

/// Byte index just past a balanced `(...)` group starting at the `(` at
/// `open`, or `None` if unbalanced.
fn skip_balanced(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn rule_lock_unwrap(f: &SourceFile, out: &mut Outcome) {
    if is_test_path(&f.path) {
        return;
    }
    let (flat, line_of) = flatten(f);
    let bytes = flat.as_bytes();
    let mut sites: Vec<(usize, &str)> = Vec::new();
    // Zero-arg lock acquisitions: the chain continues right after `()`.
    for pat in [".lock()", ".read()", ".write()"] {
        let mut from = 0;
        while let Some(pos) = flat[from..].find(pat) {
            let at = from + pos;
            sites.push((at + pat.len(), &pat[1..pat.len() - 2]));
            from = at + pat.len();
        }
    }
    // Condvar waits carry arguments: balance the parens first.
    for pat in [".wait(", ".wait_timeout(", ".wait_while("] {
        let mut from = 0;
        while let Some(pos) = flat[from..].find(pat) {
            let at = from + pos;
            let open = at + pat.len() - 1;
            if let Some(end) = skip_balanced(bytes, open) {
                sites.push((end, pat[1..].trim_end_matches('(')));
            }
            from = at + pat.len();
        }
    }
    for (after, what) in sites {
        let mut k = after;
        while k < bytes.len() && (bytes[k] as char).is_whitespace() {
            k += 1;
        }
        let tail = &flat[k.min(flat.len())..];
        let bad = if tail.starts_with(".unwrap()") {
            Some("unwrap()")
        } else if tail.starts_with(".expect(") {
            Some("expect(..)")
        } else {
            None
        };
        if let Some(bad) = bad {
            let idx = line_of[after.saturating_sub(1)];
            if f.lines[idx].in_test {
                continue;
            }
            push(
                out,
                f,
                idx,
                "lock-unwrap",
                format!(
                    "`.{what}(…).{bad}` panics on a poisoned lock; recover with \
                     `.unwrap_or_else(PoisonError::into_inner)` so one panicking \
                     query cannot brick the service"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------- rule 4

/// Allocation-ish tokens that must not be evaluated eagerly in span-site
/// arguments: the disabled-tracing contract is one relaxed atomic load
/// per site, and Rust evaluates arguments before `span()` can check the
/// gate. `span_dyn`'s closure is the sanctioned lazy form.
const SPAN_BANNED: &[&str] = &[
    "Instant::now",
    "format!",
    ".to_string()",
    ".to_owned()",
    "String::from",
    "String::new",
    "Vec::new",
    "vec!",
    "Box::new",
    ".collect()",
    ".join(",
];

fn rule_span_alloc(f: &SourceFile, out: &mut Outcome) {
    if is_test_path(&f.path) || f.path.starts_with("crates/obs/") {
        return;
    }
    let (flat, line_of) = flatten(f);
    let bytes = flat.as_bytes();
    for pat in ["span(", "span_at("] {
        let mut from = 0;
        while let Some(pos) = flat[from..].find(pat) {
            let at = from + pos;
            from = at + pat.len();
            // Word boundary on the `s` — rejects `respan(` but accepts
            // `trace::span(`.
            if at > 0 {
                let before = bytes[at - 1] as char;
                if before.is_alphanumeric() || before == '_' {
                    continue;
                }
            }
            let open = at + pat.len() - 1;
            let Some(end) = skip_balanced(bytes, open) else {
                continue;
            };
            let args = &flat[open..end];
            // Only obs span sites take a Stage; anything else named
            // `span` is not ours to police.
            if !args.contains("Stage::") {
                continue;
            }
            let idx = line_of[at];
            if f.lines[idx].in_test {
                continue;
            }
            for banned in SPAN_BANNED {
                if args.contains(banned) {
                    push(
                        out,
                        f,
                        idx,
                        "span-alloc",
                        format!(
                            "`{}` evaluated eagerly in a span-site argument; disabled \
                             tracing must cost one relaxed atomic — move it behind a \
                             `span_dyn` closure",
                            banned.trim_matches(|c| c == '.' || c == '(')
                        ),
                    );
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------- rules 5/6

/// `SeqCst` / `static mut` are not forbidden, but they are never the
/// default: each site must say why it needs the strongest ordering (or
/// mutable global state) via `lint:allow`.
fn rule_needs_justification(
    f: &SourceFile,
    out: &mut Outcome,
    rule: &'static str,
    token: &str,
    everywhere: bool,
) {
    if !everywhere && is_test_path(&f.path) {
        return;
    }
    for (idx, line) in f.lines.iter().enumerate() {
        if !everywhere && line.in_test {
            continue;
        }
        if contains_word(&line.code, token) {
            push(
                out,
                f,
                idx,
                rule,
                format!(
                    "`{token}` needs justification; add `// lint:allow({rule}): <why>` \
                     or use a weaker, argued ordering"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_str;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        check_file(&scan_str(path, src)).findings
    }

    #[test]
    fn parse_allow_requires_reason() {
        assert_eq!(
            parse_allow("lint:allow(seqcst): shutdown latch", "seqcst").as_deref(),
            Some("shutdown latch")
        );
        assert_eq!(parse_allow("lint:allow(seqcst):", "seqcst"), None);
        assert_eq!(parse_allow("lint:allow(seqcst) no colon", "seqcst"), None);
        assert_eq!(parse_allow("lint:allow(other): reason", "seqcst"), None);
        assert_eq!(
            parse_allow("lint:allow(a, seqcst): both", "seqcst").as_deref(),
            Some("both")
        );
    }

    #[test]
    fn unsafe_without_safety_fires_and_comment_covers() {
        let bad = findings("crates/x/src/lib.rs", "fn f() {\n    unsafe { g() }\n}\n");
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].rule, "unsafe-safety");
        assert_eq!(bad[0].line, 2);
        let good = findings(
            "crates/x/src/lib.rs",
            "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g() }\n}\n",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn doc_safety_covers_unsafe_fn_but_not_blocks() {
        let good = findings(
            "crates/x/src/lib.rs",
            "/// Does things.\n///\n/// # Safety\n/// Caller upholds X.\nunsafe fn f() {}\n",
        );
        assert!(good.is_empty(), "{good:?}");
        let bad = findings(
            "crates/x/src/lib.rs",
            "/// # Safety is not how blocks are audited\nfn f() { unsafe { g() } }\n",
        );
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn twin_unsafe_impls_share_one_safety_comment() {
        let good = findings(
            "crates/x/src/lib.rs",
            "// SAFETY: Ptr is only written through disjoint regions.\n\
             unsafe impl Send for P {}\nunsafe impl Sync for P {}\n",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn spawn_flagged_outside_executor_and_net() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(findings("crates/service/src/lib.rs", src).len(), 1);
        assert!(findings("crates/executor/src/lib.rs", src).is_empty());
        assert!(findings("crates/net/src/server.rs", src).is_empty());
        assert!(findings("tests/stress.rs", src).is_empty());
    }

    #[test]
    fn lock_unwrap_chains_across_lines() {
        let bad = findings(
            "crates/x/src/lib.rs",
            "fn f(m: &std::sync::Mutex<u32>) {\n    let g = m.lock()\n        .unwrap();\n}\n",
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "lock-unwrap");
        assert_eq!(bad[0].line, 2);
        let good = findings(
            "crates/x/src/lib.rs",
            "fn f(m: &std::sync::Mutex<u32>) {\n    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n}\n",
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn condvar_wait_unwrap_is_flagged() {
        let bad = findings(
            "crates/x/src/lib.rs",
            "fn f() {\n    guard = cv.wait(guard).unwrap();\n}\n",
        );
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn span_site_alloc_flagged_outside_obs() {
        let bad = findings(
            "crates/service/src/lib.rs",
            "fn f() { let _s = trace::span(Stage::Exec, format!(\"q{}\", 1)); }\n",
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "span-alloc");
        // span_dyn closures are the sanctioned lazy form.
        let good = findings(
            "crates/service/src/lib.rs",
            "fn f() { let _s = trace::span_dyn(Stage::Exec, || format!(\"q{}\", 1)); }\n",
        );
        assert!(good.is_empty(), "{good:?}");
        // And obs itself may do real work at span construction.
        let obs = findings(
            "crates/obs/src/trace.rs",
            "fn f() { let _s = span(Stage::Exec, format!(\"q{}\", 1)); }\n",
        );
        assert!(obs.is_empty(), "{obs:?}");
    }

    #[test]
    fn seqcst_needs_allow_and_allow_is_recorded() {
        let src = "fn f(a: &AtomicBool) { a.store(true, Ordering::SeqCst); }\n";
        let bad = findings("crates/x/src/lib.rs", src);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "seqcst");
        let out = check_file(&scan_str(
            "crates/x/src/lib.rs",
            "fn f(a: &AtomicBool) {\n    // lint:allow(seqcst): one-shot latch, contention-free.\n    a.store(true, Ordering::SeqCst);\n}\n",
        ));
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.allowances.len(), 1);
        assert_eq!(out.allowances[0].rule, "seqcst");
    }

    #[test]
    fn static_mut_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    static mut X: u32 = 0;\n}\n";
        let bad = findings("crates/x/src/lib.rs", src);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "static-mut");
    }

    #[test]
    fn strings_do_not_trigger_rules() {
        let src = "fn f() { let s = \"unsafe { thread::spawn } Ordering::SeqCst\"; }\n";
        assert!(findings("crates/x/src/lib.rs", src).is_empty());
    }
}
