//! JSON report artifact.
//!
//! Hand-rolled serializer (pure std, like the rest of the workspace's
//! tooling output). The schema is validated in CI by
//! `ci/check_lint.py`; bump `VERSION` when it changes shape.

use crate::rules::{Allowance, Finding, Outcome, RULES};

/// Report schema version, mirrored by `ci/check_lint.py`.
pub const VERSION: u32 = 1;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(v: &Finding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
        esc(v.rule),
        esc(&v.path),
        v.line,
        esc(&v.message),
        esc(&v.snippet)
    )
}

fn allowance_json(a: &Allowance) -> String {
    format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"reason\":\"{}\"}}",
        esc(a.rule),
        esc(&a.path),
        a.line,
        esc(&a.reason)
    )
}

/// Renders the full report for one workspace scan.
pub fn render(root: &str, files_scanned: usize, out: &Outcome) -> String {
    let rules: Vec<String> = RULES
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"{}\",\"summary\":\"{}\"}}",
                esc(r.name),
                esc(r.summary)
            )
        })
        .collect();
    let violations: Vec<String> = out.findings.iter().map(finding_json).collect();
    let allowances: Vec<String> = out.allowances.iter().map(allowance_json).collect();
    format!(
        "{{\n  \"version\": {VERSION},\n  \"tool\": \"mmjoin-lint\",\n  \"root\": \"{}\",\n  \
         \"files_scanned\": {files_scanned},\n  \"clean\": {},\n  \"rules\": [{}],\n  \
         \"violations\": [{}],\n  \"allowances\": [{}]\n}}\n",
        esc(root),
        out.findings.is_empty(),
        rules.join(","),
        violations.join(","),
        allowances.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Outcome};

    #[test]
    fn clean_report_shape() {
        let r = render("/repo", 10, &Outcome::default());
        assert!(r.contains("\"version\": 1"));
        assert!(r.contains("\"clean\": true"));
        assert!(r.contains("\"files_scanned\": 10"));
        assert!(r.contains("unsafe-safety"));
    }

    #[test]
    fn escaping_is_applied() {
        let mut out = Outcome::default();
        out.findings.push(Finding {
            rule: "seqcst",
            path: "a\"b.rs".into(),
            line: 3,
            message: "tab\there".into(),
            snippet: "x".into(),
        });
        let r = render(".", 1, &out);
        assert!(r.contains("a\\\"b.rs"));
        assert!(r.contains("tab\\there"));
        assert!(r.contains("\"clean\": false"));
    }
}
