//! End-to-end pipelines: the three §4 applications (SSJ, SCJ, BSI) run on
//! generated datasets through every algorithm and agree with references.

use mmjoin_bsi::{answer_batch, random_workload, simulate_batching, BsiStrategy};
use mmjoin_core::JoinConfig;
use mmjoin_datagen::{DatasetKind, Table2Row};
use mmjoin_scj::{brute_force_scj, set_containment_join, ScjAlgorithm};
use mmjoin_ssj::{brute_force_ssj, ordered_ssj, unordered_ssj, SizeAwarePPOpts, SsjAlgorithm};
use mmjoin_storage::Value;

const SEED: u64 = 99;

fn cfg(threads: usize) -> JoinConfig {
    JoinConfig {
        threads,
        ..JoinConfig::default()
    }
}

#[test]
fn ssj_pipeline_all_algorithms_all_kinds() {
    for kind in [DatasetKind::Dblp, DatasetKind::Jokes, DatasetKind::Image] {
        let r = mmjoin_datagen::generate(kind, 0.02, SEED);
        for c in [2u32, 4] {
            let expected: Vec<(Value, Value)> = brute_force_ssj(&r, c)
                .into_iter()
                .map(|p| (p.a, p.b))
                .collect();
            for (algo, threads) in [
                (SsjAlgorithm::SizeAware, 1),
                (SsjAlgorithm::SizeAwarePP(SizeAwarePPOpts::all()), 1),
                (SsjAlgorithm::MmJoin, 1),
                (SsjAlgorithm::MmJoin, 4),
            ] {
                assert_eq!(
                    unordered_ssj(&r, c, &algo, &cfg(threads)),
                    expected,
                    "{kind:?} c={c} {algo:?} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn ordered_ssj_counts_correct_and_sorted() {
    let r = mmjoin_datagen::generate(DatasetKind::Jokes, 0.02, SEED);
    let brute = brute_force_ssj(&r, 3);
    for algo in [
        SsjAlgorithm::SizeAware,
        SsjAlgorithm::SizeAwarePP(SizeAwarePPOpts::all()),
        SsjAlgorithm::MmJoin,
    ] {
        let got = ordered_ssj(&r, 3, &algo, &cfg(1));
        assert!(
            got.windows(2).all(|w| w[0].overlap >= w[1].overlap),
            "{algo:?} not sorted by overlap"
        );
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        let mut brute_sorted = brute.clone();
        brute_sorted.sort_unstable();
        assert_eq!(got_sorted, brute_sorted, "{algo:?} wrong pairs/counts");
    }
}

#[test]
fn scj_pipeline_all_algorithms_all_kinds() {
    for kind in [DatasetKind::Dblp, DatasetKind::Protein, DatasetKind::Image] {
        let r = mmjoin_datagen::generate(kind, 0.02, SEED);
        let expected = brute_force_scj(&r);
        for algo in [
            ScjAlgorithm::Pretti,
            ScjAlgorithm::LimitPlus { limit: 2 },
            ScjAlgorithm::PieJoin,
            ScjAlgorithm::MmJoin,
        ] {
            assert_eq!(
                set_containment_join(&r, &algo, &cfg(1)),
                expected,
                "{kind:?} {algo:?}"
            );
        }
    }
}

#[test]
fn dense_datasets_have_containments() {
    // The paper observes that on dense datasets the SCJ result is large
    // (§7.4) — the generators must reproduce that.
    for kind in [DatasetKind::Jokes, DatasetKind::Protein, DatasetKind::Image] {
        let r = mmjoin_datagen::generate(kind, 0.05, SEED);
        let scj = set_containment_join(&r, &ScjAlgorithm::Pretti, &cfg(1));
        assert!(
            scj.len() > r.active_x_count(),
            "{kind:?}: only {} containments over {} sets",
            scj.len(),
            r.active_x_count()
        );
    }
}

#[test]
fn bsi_pipeline_strategies_agree_on_generated_workload() {
    let r = mmjoin_datagen::generate(DatasetKind::Words, 0.03, SEED);
    let workload = random_workload(&r, &r, 500, SEED);
    let reference = answer_batch(&r, &r, &workload, &BsiStrategy::PerRequest);
    assert!(
        reference.iter().any(|&b| b),
        "workload should contain positive queries"
    );
    for strategy in [BsiStrategy::NonMm, BsiStrategy::mm(1), BsiStrategy::mm(2)] {
        assert_eq!(
            answer_batch(&r, &r, &workload, &strategy),
            reference,
            "{strategy:?}"
        );
    }
}

#[test]
fn bsi_simulation_batches_partition_workload() {
    let r = mmjoin_datagen::generate(DatasetKind::Jokes, 0.02, SEED);
    let workload = random_workload(&r, &r, 333, SEED);
    for batch in [1usize, 7, 100, 1000] {
        let rep = simulate_batching(&r, &r, &workload, batch, 1000.0, &BsiStrategy::NonMm);
        assert!(rep.avg_delay_secs >= 0.0);
        assert!((0.0..=1.0).contains(&rep.positive_rate), "batch={batch}");
    }
}

#[test]
fn table2_statistics_track_specs() {
    for kind in DatasetKind::ALL {
        let r = mmjoin_datagen::generate(kind, 0.1, SEED);
        let row = Table2Row::measure(kind, &r);
        assert!(row.tuples > 0, "{kind:?}");
        assert!(row.min_set <= row.max_set);
        assert!(row.avg_set >= row.min_set as f64);
        assert!(row.avg_set <= row.max_set as f64);
        // Density in the paper's sense is about join duplication, not raw
        // set size (Words is dense through Zipf-head tokens despite small
        // sets): check the full-join blow-up ratio.
        let ratio = r.full_join_size(&r) as f64 / r.len().max(1) as f64;
        if kind.is_dense() {
            assert!(ratio > 8.0, "{kind:?} should be dense, ratio {ratio:.1}");
        } else {
            assert!(ratio < 8.0, "{kind:?} should be sparse, ratio {ratio:.1}");
        }
    }
}
