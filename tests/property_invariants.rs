//! Workspace-level property tests: algebraic invariants of the
//! join-project operator that every engine must satisfy, checked on
//! randomly generated relations.

use mmjoin_api::{Engine, PairSink, Query};
use mmjoin_baseline::fulljoin::SortMergeEngine;
use mmjoin_core::{
    estimate_output_size, star_join_project_mm, two_path_join_project, two_path_with_counts,
    JoinConfig, MmJoinEngine,
};
use mmjoin_ssj::{unordered_ssj, SsjAlgorithm};
use mmjoin_storage::{Relation, Value};
use mmjoin_wcoj::star_join_project;
use proptest::prelude::*;

fn rel(edges: &[(Value, Value)]) -> Relation {
    Relation::from_edges(edges.iter().copied())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The output-size estimator's bounds always bracket the true output.
    #[test]
    fn estimator_bounds_bracket_truth(
        r_edges in proptest::collection::vec((0u32..20, 0u32..16), 1..100),
        s_edges in proptest::collection::vec((0u32..20, 0u32..16), 1..100),
    ) {
        let r = rel(&r_edges);
        let s = rel(&s_edges);
        // Estimator bounds are derived for reduced (dangling-free) inputs.
        let (r, s) = Relation::reduce_pair(&r, &s);
        let truth = SortMergeEngine.join_project(&r, &s).len() as u64;
        let est = estimate_output_size(&r, &s);
        if truth > 0 {
            prop_assert!(est.lower <= truth, "lower {} > truth {truth}", est.lower);
            prop_assert!(est.upper >= truth, "upper {} < truth {truth}", est.upper);
        }
    }

    /// Join-project of a self join is symmetric: (a, b) ∈ OUT ⟺ (b, a) ∈ OUT.
    #[test]
    fn self_join_output_symmetric(
        edges in proptest::collection::vec((0u32..18, 0u32..14), 1..90),
    ) {
        let r = rel(&edges);
        let out = two_path_join_project(&r, &r, &JoinConfig::default());
        for &(a, b) in &out {
            prop_assert!(
                out.binary_search(&(b, a)).is_ok(),
                "({a},{b}) present but ({b},{a}) missing"
            );
        }
        // Diagonal: every active x joins with itself.
        for (x, _) in r.by_x().iter_nonempty() {
            prop_assert!(out.binary_search(&(x, x)).is_ok());
        }
    }

    /// Monotonicity: adding tuples never removes output pairs.
    #[test]
    fn join_project_monotone_under_insertion(
        base in proptest::collection::vec((0u32..15, 0u32..12), 1..60),
        extra in proptest::collection::vec((0u32..15, 0u32..12), 1..20),
    ) {
        let r1 = rel(&base);
        let mut all = base.clone();
        all.extend_from_slice(&extra);
        let r2 = rel(&all);
        let out1 = two_path_join_project(&r1, &r1, &JoinConfig::default());
        let out2 = two_path_join_project(&r2, &r2, &JoinConfig::default());
        for p in &out1 {
            prop_assert!(out2.binary_search(p).is_ok(), "{p:?} lost after insertion");
        }
    }

    /// Counting output, summed over all pairs, equals the full join size.
    #[test]
    fn counts_sum_to_full_join(
        r_edges in proptest::collection::vec((0u32..15, 0u32..12), 1..70),
        s_edges in proptest::collection::vec((0u32..15, 0u32..12), 1..70),
    ) {
        let r = rel(&r_edges);
        let s = rel(&s_edges);
        let counts = two_path_with_counts(&r, &s, 1, &JoinConfig::default());
        let total: u64 = counts.iter().map(|&(_, _, c)| c as u64).sum();
        prop_assert_eq!(total, r.full_join_size(&s));
    }

    /// SSJ with c = 1 equals the off-diagonal upper half of the
    /// join-project output.
    #[test]
    fn ssj_c1_equals_join_project(
        edges in proptest::collection::vec((0u32..14, 0u32..10), 1..60),
    ) {
        let r = rel(&edges);
        let ssj = unordered_ssj(&r, 1, &SsjAlgorithm::MmJoin, &JoinConfig::default());
        let jp: Vec<(Value, Value)> = two_path_join_project(&r, &r, &JoinConfig::default())
            .into_iter()
            .filter(|&(a, b)| a < b)
            .collect();
        prop_assert_eq!(ssj, jp);
    }

    /// SSJ output shrinks (weakly) as c grows.
    #[test]
    fn ssj_antitone_in_c(
        edges in proptest::collection::vec((0u32..14, 0u32..10), 1..60),
        c in 1u32..5,
    ) {
        let r = rel(&edges);
        let lo = unordered_ssj(&r, c, &SsjAlgorithm::MmJoin, &JoinConfig::default());
        let hi = unordered_ssj(&r, c + 1, &SsjAlgorithm::MmJoin, &JoinConfig::default());
        prop_assert!(hi.len() <= lo.len());
        for p in &hi {
            prop_assert!(lo.binary_search(p).is_ok());
        }
    }

    /// Star k=3 with one relation duplicated twice equals the 2-path result
    /// lifted to triples on the duplicated coordinates.
    #[test]
    fn star_with_duplicate_relation_consistent(
        edges in proptest::collection::vec((0u32..10, 0u32..8), 1..40),
    ) {
        let r = rel(&edges);
        let star = star_join_project_mm(
            &[r.clone(), r.clone(), r.clone()],
            &JoinConfig::default(),
        );
        let pairs = two_path_join_project(&r, &r, &JoinConfig::default());
        // Projection of the star result onto (x1, x2) must equal the 2-path.
        let mut projected: Vec<(Value, Value)> =
            star.iter().map(|t| (t[0], t[1])).collect();
        projected.sort_unstable();
        projected.dedup();
        prop_assert_eq!(projected, pairs);
    }

    /// The WCOJ reference and MMJoin agree for arbitrary k=3 instances
    /// under the default optimizer (not just forced thresholds).
    #[test]
    fn star_optimizer_path_correct(
        e1 in proptest::collection::vec((0u32..8, 0u32..6), 1..30),
        e2 in proptest::collection::vec((0u32..8, 0u32..6), 1..30),
        e3 in proptest::collection::vec((0u32..8, 0u32..6), 1..30),
    ) {
        let rels = vec![rel(&e1), rel(&e2), rel(&e3)];
        let cfg = JoinConfig { wcoj_fallback_factor: 2.0, ..JoinConfig::default() };
        prop_assert_eq!(
            star_join_project_mm(&rels, &cfg),
            star_join_project(&rels)
        );
    }

    /// The unified Engine front door and the free functions agree.
    #[test]
    fn engine_front_door_matches_free_function(
        edges in proptest::collection::vec((0u32..12, 0u32..10), 1..50),
    ) {
        let r = rel(&edges);
        let engine = MmJoinEngine::serial();
        let q = Query::two_path(&r, &r).build().unwrap();
        let mut sink = PairSink::new();
        engine.execute(&q, &mut sink).unwrap();
        prop_assert_eq!(
            sink.pairs,
            two_path_join_project(&r, &r, &JoinConfig::default())
        );
    }
}
