//! Concurrency stress: N client threads mixing queries, incremental
//! inserts/deletes, and relation removes against ONE shared service,
//! with intra-query parallelism drawing from the service's shared
//! executor budget. Every client's observed results must be
//! byte-identical to a serial replay of its op sequence (clients touch
//! disjoint relations plus one shared read-only relation, so the serial
//! replay is well-defined regardless of interleaving), and the service
//! must come out of the storm fully functional — no poisoned lock, no
//! deadlock, warm cache intact.

use mmjoin::{JoinConfig, Relation, Request, Service, ServiceConfig, ServiceError};

const CLIENTS: u32 = 4;

fn client_relation(i: u32, salt: u32) -> Relation {
    Relation::from_edges(
        (0..240u32).map(move |j| ((j * (3 + i + salt)) % 40, (j * (7 + salt)) % 25)),
    )
}

fn shared_relation() -> Relation {
    Relation::from_edges((0..400u32).map(|j| ((j * 13) % 60, (j * 5) % 30)))
}

fn sorted(rows: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let mut rows = rows.to_vec();
    rows.sort();
    rows
}

/// One client's full op script against `service`, returning the sorted
/// rows of every query it issued (in script order). The script mixes
/// cold and warm queries, delta maintenance, every query family, and a
/// relation removal.
fn run_client_ops(service: &Service, i: u32) -> Vec<Vec<Vec<u32>>> {
    let r = format!("r{i}");
    let s = format!("s{i}");
    service.register(&r, client_relation(i, 0));
    service.register(&s, client_relation(i, 9));
    let mut results = Vec::new();
    let mut push = |resp: mmjoin::Response| results.push(sorted(&resp.rows));

    push(service.query(Request::two_path(&r, &s)).unwrap());
    push(service.query(Request::two_path(&r, &s)).unwrap()); // warm
    service.insert(&r, [(41, 3), (42, 7)]).unwrap();
    push(service.query(Request::two_path(&r, &s)).unwrap());
    service.delete(&r, [(41, 3)]).unwrap();
    push(service.query(Request::two_path_counts(&r, &r, 2)).unwrap());
    push(service.query(Request::star([&r, &r, &r])).unwrap());
    push(service.query(Request::chain([&r, &s])).unwrap());
    push(
        service
            .query(Request::two_path("shared", "shared"))
            .unwrap(),
    );
    assert!(service.remove(&s));
    assert!(matches!(
        service.query(Request::two_path(&r, &s)),
        Err(ServiceError::UnknownRelation(_))
    ));
    results
}

#[test]
fn concurrent_clients_match_serial_replay() {
    // Expected per-client results: a serial replay on a fresh
    // single-worker, serial-engine service.
    let expected: Vec<Vec<Vec<Vec<u32>>>> = (0..CLIENTS)
        .map(|i| {
            let serial = Service::with_config(ServiceConfig {
                workers: 1,
                thread_budget: 1,
                ..ServiceConfig::default()
            });
            serial.register("shared", shared_relation());
            run_client_ops(&serial, i)
        })
        .collect();

    for threads in [1usize, 2, 8] {
        let service = Service::with_config(ServiceConfig {
            workers: 4,
            thread_budget: 8,
            join_config: JoinConfig {
                threads,
                ..JoinConfig::default()
            },
            ..ServiceConfig::default()
        });
        service.register("shared", shared_relation());

        std::thread::scope(|scope| {
            for i in 0..CLIENTS {
                let service = &service;
                let expected = &expected;
                scope.spawn(move || {
                    let got = run_client_ops(service, i);
                    assert_eq!(
                        got, expected[i as usize],
                        "client {i} diverged from its serial replay (threads={threads})"
                    );
                });
            }
        });

        // The storm is over and the service is fully healthy: metrics
        // answer, the shared entry is warm, and new work still runs.
        let m = service.metrics();
        // The only errors are the CLIENTS deliberate unknown-relation
        // probes after each client removed its own relation.
        assert_eq!(m.errors, CLIENTS as u64, "threads={threads}");
        assert!(m.queries_served >= (CLIENTS as u64) * 7);
        let warm = service
            .query(Request::two_path("shared", "shared"))
            .unwrap();
        assert!(warm.cached, "shared entry must survive the churn");
        service.register("fresh", client_relation(99, 1));
        assert!(!service
            .query(Request::two_path("fresh", "fresh"))
            .unwrap()
            .rows
            .is_empty());
    }
}

/// Clients hammering the same *shared* relation with reads while one
/// thread applies updates: reads must always reflect some consistent
/// epoch (serial replay of the update sequence), never a torn mix.
#[test]
fn readers_see_consistent_epochs_under_updates() {
    let service = Service::with_config(ServiceConfig {
        workers: 4,
        thread_budget: 4,
        join_config: JoinConfig {
            threads: 2,
            ..JoinConfig::default()
        },
        ..ServiceConfig::default()
    });
    service.register("g", shared_relation());

    // Serial ground truth: the result at every update epoch.
    let mut snapshots: Vec<Vec<Vec<u32>>> = Vec::new();
    {
        let serial = Service::with_config(ServiceConfig {
            workers: 1,
            thread_budget: 1,
            ..ServiceConfig::default()
        });
        serial.register("g", shared_relation());
        snapshots.push(sorted(
            &serial.query(Request::two_path("g", "g")).unwrap().rows,
        ));
        for step in 0..8u32 {
            serial.insert("g", [(61 + step, step % 30)]).unwrap();
            snapshots.push(sorted(
                &serial.query(Request::two_path("g", "g")).unwrap().rows,
            ));
        }
    }

    std::thread::scope(|scope| {
        let service = &service;
        let snapshots = &snapshots;
        // Writer: applies the same update sequence.
        scope.spawn(move || {
            for step in 0..8u32 {
                service.insert("g", [(61 + step, step % 30)]).unwrap();
            }
        });
        // Readers: every observed result must equal one of the epochs'
        // serial snapshots.
        for _ in 0..3 {
            scope.spawn(move || {
                for _ in 0..12 {
                    let rows = sorted(&service.query(Request::two_path("g", "g")).unwrap().rows);
                    assert!(
                        snapshots.contains(&rows),
                        "reader observed a state matching no update epoch"
                    );
                }
            });
        }
    });

    // After the writer finished, the service converges to the final epoch.
    let rows = sorted(&service.query(Request::two_path("g", "g")).unwrap().rows);
    assert_eq!(&rows, snapshots.last().unwrap());
    assert_eq!(service.metrics().errors, 0);
}

/// Shard snapshot isolation: a storm of updates to relation `hot` must
/// be invisible to concurrent readers of relation `cold` on a
/// *different* catalog shard — `cold`'s pinned epoch never moves, its
/// cache entry keeps hitting, and its readers never block behind the
/// writer (they all complete while the writer is still running).
#[test]
fn updates_to_one_shard_never_touch_another() {
    let service = Service::with_config(ServiceConfig {
        workers: 4,
        thread_budget: 4,
        catalog_shards: 8,
        ..ServiceConfig::default()
    });

    // Pick names on provably distinct shards.
    let hot = "hot".to_string();
    let cold = (0..)
        .map(|i| format!("cold{i}"))
        .find(|n| service.shard_of(n) != service.shard_of(&hot))
        .unwrap();
    service.register(&hot, shared_relation());
    service.register(&cold, client_relation(3, 5));

    // Warm `cold`'s cache entry and pin its expected state.
    let baseline = sorted(&service.query(Request::two_path(&cold, &cold)).unwrap().rows);
    let cold_epoch = service.relation_epoch(&cold).unwrap();

    let writer_running = std::sync::atomic::AtomicBool::new(true);
    std::thread::scope(|scope| {
        let service = &service;
        let cold = &cold;
        let hot = &hot;
        let baseline = &baseline;
        let writer_running = &writer_running;

        // Writer: continuous inserts to `hot` (each bumps its epoch and
        // churns the maintenance machinery) until readers are done.
        scope.spawn(move || {
            for step in 0..200u32 {
                service.insert(hot, [(100 + step, step % 30)]).unwrap();
                if !writer_running.load(std::sync::atomic::Ordering::SeqCst) && step >= 20 {
                    break;
                }
            }
        });

        let readers: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(move || {
                    for _ in 0..30 {
                        let resp = service.query(Request::two_path(cold, cold)).unwrap();
                        // Never invalidated by the other shard's storm…
                        assert!(
                            resp.cached,
                            "cold entry was invalidated by updates to another shard"
                        );
                        // …never a different epoch's rows…
                        assert_eq!(&sorted(&resp.rows), baseline);
                        // …and the pinned epoch never moved.
                        assert_eq!(service.relation_epoch(cold), Some(cold_epoch));
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        // Readers finished while the writer may still be running: they
        // were never serialized behind it.
        writer_running.store(false, std::sync::atomic::Ordering::SeqCst);
    });

    // The storm moved `hot`'s epoch (≥ 20 effective updates) and left
    // `cold`'s untouched.
    assert!(service.relation_epoch(&hot).unwrap() >= 21);
    assert_eq!(service.relation_epoch(&cold), Some(cold_epoch));
    assert_eq!(service.metrics().errors, 0);
}
