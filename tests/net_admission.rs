//! Admission-control stress for the TCP front end: more in-flight work
//! than the queue bound must bounce with OVERLOADED *promptly* (from
//! the reader thread, not after the queue drains), every accepted
//! query must complete with rows identical to a serial replay, a
//! modest client must keep completing while a chatty one floods
//! (per-client fairness floor), and `shutdown` must drain admitted
//! jobs before the server stops.

use mmjoin_net::{serve, Client, NetConfig, Status};
use mmjoin_service::{command, Service, ServiceConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// `ok rows <n> …` → n.
fn rows_of(body: &str) -> u64 {
    let mut it = body.split_whitespace();
    assert_eq!(it.next(), Some("ok"), "{body}");
    assert_eq!(it.next(), Some("rows"), "{body}");
    it.next().unwrap().parse().unwrap()
}

/// Distinct `min <i>` thresholds keep every query cold (distinct
/// fingerprints), so each one costs real execution time and the queue
/// genuinely backs up behind a single dispatcher.
fn cold_query(i: u32) -> String {
    format!("query twopath R R min {i}")
}

const GEN: &str = "gen R Jokes 0.15";

#[test]
fn overloaded_is_prompt_and_accepted_queries_complete_correctly() {
    let service = Arc::new(Service::with_config(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }));
    let server = serve(
        service,
        NetConfig {
            queue_capacity: 3,
            per_client_quota: 3,
            dispatchers: 1,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let mut c = Client::connect(addr).unwrap();
    assert_eq!(c.call(GEN).unwrap().status, Status::Ok);

    // Burst: pipeline far more work than the queue bound in one go.
    let lines: Vec<String> = (1..=10).map(cold_query).collect();
    let mut by_id: HashMap<u64, String> = HashMap::new();
    for line in &lines {
        by_id.insert(c.send(line).unwrap(), line.clone());
    }

    let mut rows: HashMap<String, u64> = HashMap::new();
    let mut bounced: Vec<String> = Vec::new();
    let mut ok_after_bounce = false;
    for _ in 0..lines.len() {
        let resp = c.recv().unwrap();
        match resp.status {
            Status::Ok => {
                if !bounced.is_empty() {
                    ok_after_bounce = true;
                }
                rows.insert(by_id[&resp.id].clone(), rows_of(&resp.body));
            }
            Status::Overloaded => bounced.push(by_id[&resp.id].clone()),
            other => panic!("unexpected status {other} ({})", resp.body),
        }
    }
    assert!(
        !bounced.is_empty(),
        "a 10-deep burst against a queue of 3 must bounce"
    );
    // (a) Promptness: bounces were answered while accepted queries were
    // still executing — i.e. some Ok arrived *after* an OVERLOADED,
    // which is impossible if rejections waited for the queue to drain.
    assert!(
        ok_after_bounce,
        "OVERLOADED must be answered immediately at admission time"
    );

    // (b) Bounced work retried until admitted: everything completes.
    for line in bounced {
        loop {
            let resp = c.call(&line).unwrap();
            match resp.status {
                Status::Ok => {
                    rows.insert(line.clone(), rows_of(&resp.body));
                    break;
                }
                Status::Overloaded => std::thread::sleep(Duration::from_millis(20)),
                other => panic!("unexpected status {other} ({})", resp.body),
            }
        }
    }

    // Correctness: every accepted answer matches a serial replay.
    let serial = Service::with_default_registry(1);
    command::run_line(&serial, GEN).unwrap();
    for line in &lines {
        let body = command::run_line(&serial, line).unwrap();
        assert_eq!(
            rows[line],
            rows_of(&body),
            "{line} diverged from serial replay"
        );
    }

    // Bounded memory: the queue's high-water mark respects its bound.
    let m = server.metrics();
    assert!(
        m.max_queue_depth <= 3,
        "queue depth {} exceeded bound 3",
        m.max_queue_depth
    );
    assert!(m.rejected_overloaded >= 1);
    server.shutdown();
    server.wait();
}

#[test]
fn chatty_client_cannot_starve_a_modest_one() {
    const CHATTY_TOTAL: u64 = 30;
    const MODEST_TOTAL: u64 = 6;

    let service = Arc::new(Service::with_config(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }));
    // Quota 4 < capacity 8: the chatty client can never fill admission,
    // so the modest client is never bounced — fairness at admission.
    let server = serve(
        service,
        NetConfig {
            queue_capacity: 8,
            per_client_quota: 4,
            dispatchers: 1,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let mut setup = Client::connect(addr).unwrap();
    assert_eq!(setup.call(GEN).unwrap().status, Status::Ok);

    let chatty_done = AtomicU64::new(0);
    let chatty_done_when_modest_finished = AtomicU64::new(u64::MAX);

    std::thread::scope(|scope| {
        let chatty_done = &chatty_done;
        let observed = &chatty_done_when_modest_finished;

        // Chatty: keeps a 4-deep pipeline full for 30 cold queries,
        // immediately retrying anything the quota bounces.
        scope.spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let mut next: u32 = 0;
            let mut in_flight: HashMap<u64, String> = HashMap::new();
            let mut completed = 0u64;
            while completed < CHATTY_TOTAL {
                while in_flight.len() < 4 && next < CHATTY_TOTAL as u32 {
                    let line = cold_query(next + 1);
                    next += 1;
                    in_flight.insert(c.send(&line).unwrap(), line);
                }
                let resp = c.recv().unwrap();
                let line = in_flight.remove(&resp.id).expect("unknown id");
                match resp.status {
                    Status::Ok => {
                        completed += 1;
                        chatty_done.fetch_add(1, Ordering::SeqCst);
                    }
                    // Quota bounce: retry the same line.
                    Status::Overloaded => {
                        in_flight.insert(c.send(&line).unwrap(), line);
                    }
                    other => panic!("chatty: unexpected status {other} ({})", resp.body),
                }
            }
        });

        // Modest: 6 sequential cold queries; records how far the
        // chatty client had gotten when it finished.
        scope.spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            for i in 0..MODEST_TOTAL as u32 {
                let resp = c.call(&cold_query(1000 + i)).unwrap();
                assert_eq!(
                    resp.status,
                    Status::Ok,
                    "modest client must never be bounced (quota shields it): {}",
                    resp.body
                );
            }
            observed.store(chatty_done.load(Ordering::SeqCst), Ordering::SeqCst);
        });
    });

    assert_eq!(chatty_done.load(Ordering::SeqCst), CHATTY_TOTAL);
    let observed = chatty_done_when_modest_finished.load(Ordering::SeqCst);
    // Fairness floor: round-robin alternates the two clients, so the
    // modest client's 6 queries finish after ~12 dispatch slots. If the
    // chatty backlog were drained FIFO instead, the modest client would
    // sit behind ~4 chatty jobs per query (~24+ completions). The bound
    // splits those regimes with slack for scheduling noise.
    assert!(
        observed <= 20,
        "modest client starved: chatty completed {observed}/{CHATTY_TOTAL} \
         before the modest client's {MODEST_TOTAL} queries finished"
    );

    let m = server.metrics();
    assert!(m.max_queue_depth <= 8);
    // Per-client counters saw all three connections (setup + 2).
    assert!(m.per_client_served.len() >= 3);
    server.shutdown();
    server.wait();
}

#[test]
fn shutdown_drains_admitted_work_then_refuses_new_work() {
    let service = Arc::new(Service::with_config(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }));
    let server = serve(
        service,
        NetConfig {
            queue_capacity: 8,
            per_client_quota: 8,
            dispatchers: 1,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let mut a = Client::connect(addr).unwrap();
    assert_eq!(a.call(GEN).unwrap().status, Status::Ok);

    // A pipelines slow work; B asks for shutdown while it is queued.
    let ids: Vec<u64> = (1..=3).map(|i| a.send(&cold_query(i)).unwrap()).collect();
    // Wait until the reader has decoded A's whole burst (GEN + 3 = 4
    // requests; nothing is shutting down yet and the queue has room, so
    // decoded means admitted). A fixed sleep here raced the reader
    // thread on contended single-core hosts.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.metrics().requests < 4 {
        assert!(
            std::time::Instant::now() < deadline,
            "A's burst was never decoded: {:?}",
            server.metrics()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut b = Client::connect(addr).unwrap();
    let bye = b.call("shutdown").unwrap();
    assert_eq!(bye.status, Status::Ok);
    assert_eq!(bye.body, "ok shutting down");

    // Round-robin interleaves B's shutdown with A's backlog, so at
    // least A's last query is drained *after* the server has already
    // begun shutting down — and is still answered.
    for id in ids {
        let resp = a.recv().unwrap();
        assert_eq!(resp.id, id);
        assert_eq!(resp.status, Status::Ok, "{}", resp.body);
        assert!(resp.body.starts_with("ok rows "), "{}", resp.body);
    }

    // New work on the still-open connection is refused, not queued.
    let refused = a.call("stats").unwrap();
    assert_eq!(refused.status, Status::ShuttingDown, "{}", refused.body);

    let m = server.metrics();
    assert!(m.rejected_shutting_down >= 1);
    server.wait();
}
