//! End-to-end observability: per-request traces spanning the command
//! layer → service queue → planner → executor, and the `stats` / `trace`
//! command surface both transports share.
//!
//! The tracer is process-global, so every test serializes on one lock
//! and leaves the tracer disabled and empty behind itself.

use mmjoin::{Relation, Service, ServiceConfig};
use mmjoin_obs::trace::{Stage, Tracer};
use mmjoin_service::command;
use std::sync::{Mutex, MutexGuard, PoisonError};

static GLOBAL: Mutex<()> = Mutex::new(());

/// Serializes the test on the global tracer, starting from a clean,
/// enabled, sample-everything state.
fn with_tracer() -> MutexGuard<'static, ()> {
    let guard = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
    let tracer = Tracer::global();
    tracer.clear();
    tracer.set_sample_every(1);
    tracer.set_enabled(true);
    guard
}

fn teardown() {
    let tracer = Tracer::global();
    tracer.set_enabled(false);
    tracer.clear();
}

fn chain_service() -> Service {
    let service = Service::with_config(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    service.register(
        "R",
        Relation::from_edges((0..40u32).map(|i| (i % 8, i % 5))),
    );
    service.register(
        "S",
        Relation::from_edges((0..40u32).map(|i| (i % 5, i % 7))),
    );
    service.register(
        "T",
        Relation::from_edges((0..40u32).map(|i| (i % 7, i % 4))),
    );
    service
}

#[test]
fn composed_chain_query_trace_covers_every_stage() {
    let _guard = with_tracer();
    let tracer = Tracer::global();
    let service = chain_service();

    // The REPL/dispatcher pattern: root at the boundary, then the shared
    // command layer does the rest.
    let line = "query chain R S T";
    let root = tracer.begin(line).expect("tracing is on");
    let answer = command::run_line(&service, line).expect("chain query runs");
    assert!(answer.starts_with("ok rows "), "{answer}");
    drop(root);

    let trace = tracer.last(1).pop().expect("one finished trace");
    assert_eq!(trace.label, line);
    let total = trace.total_ns();
    assert!(total > 0, "root span has a duration");

    let stages: Vec<Stage> = trace.spans.iter().map(|s| s.stage).collect();
    for want in [
        Stage::QueueWait,
        Stage::CacheProbe,
        Stage::Plan,
        Stage::Exec,
        Stage::Step,
        Stage::Serialize,
    ] {
        assert!(stages.contains(&want), "missing {want:?} in {stages:?}");
    }
    // A 3-relation chain decomposes into two joins: both plan steps (and
    // the final stage) must appear as Step spans.
    let steps = trace
        .spans
        .iter()
        .filter(|s| s.stage == Stage::Step)
        .count();
    assert!(steps >= 2, "expected every plan step traced, got {steps}");

    // Spans nest under the root, and the root's direct children are
    // sequential phases — their durations must sum to at most the total
    // request latency.
    let root_span = trace.root().expect("root span");
    let child_sum: u64 = trace
        .spans
        .iter()
        .filter(|s| s.parent == root_span.id)
        .map(|s| s.dur_ns)
        .sum();
    assert!(
        child_sum <= total,
        "direct children sum {child_sum}ns exceeds total {total}ns"
    );
    for s in &trace.spans {
        assert!(
            s.dur_ns <= total,
            "span {:?} ({}ns) outlives the request ({total}ns)",
            s.stage,
            s.dur_ns
        );
        assert!(
            s.parent == 0 || trace.spans.iter().any(|p| p.id == s.parent),
            "span {:?} has a dangling parent link",
            s.stage
        );
    }

    // The rendered tree carries every stage name with durations.
    let rendered = trace.render();
    for name in ["queue-wait", "cache-probe", "plan", "step", "serialize"] {
        assert!(
            rendered.contains(name),
            "render missing {name}:\n{rendered}"
        );
    }
    teardown();
}

#[test]
fn trace_commands_export_chrome_json() {
    let _guard = with_tracer();
    let tracer = Tracer::global();
    let service = chain_service();

    let root = tracer.begin("query chain R S T").unwrap();
    command::run_line(&service, "query chain R S T").unwrap();
    drop(root);

    let out = command::run_line(&service, "trace last").unwrap();
    let json = out.strip_prefix("ok ").expect("ok-prefixed");
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(json.contains("\"traceEvents\""), "{json}");
    for name in ["queue-wait", "plan", "serialize"] {
        assert!(json.contains(name), "chrome export missing {name}");
    }
    // Chrome trace events are complete (X-phase) with µs timestamps.
    assert!(json.contains("\"ph\":\"X\""), "{json}");

    let tree = command::run_line(&service, "trace tree").unwrap();
    assert!(tree.contains("queue-wait"), "{tree}");

    // `trace off` flips the gate; a new request mints no trace.
    assert_eq!(
        command::run_line(&service, "trace off").unwrap(),
        "ok tracing off"
    );
    assert!(tracer.begin("untraced").is_none());
    assert_eq!(
        command::run_line(&service, "trace sample 4").unwrap(),
        "ok tracing on, sampling every 4"
    );
    assert!(Tracer::global().enabled());
    teardown();
}

#[test]
fn stats_scopes_and_reset_over_the_grammar() {
    let _guard = with_tracer();
    // Tracing is irrelevant here; keep it off to exercise that path too.
    Tracer::global().set_enabled(false);
    let service = chain_service();
    command::run_line(&service, "query chain R S T").unwrap();
    command::run_line(&service, "query chain R S T").unwrap();

    let stats = command::run_line(&service, "stats").unwrap();
    assert!(stats.contains("served 2 (cache hits 1"), "{stats}");
    assert!(stats.contains("max"), "{stats}");

    let exec = command::run_line(&service, "stats executor").unwrap();
    assert!(exec.contains("budget"), "{exec}");

    let cache = command::run_line(&service, "stats cache").unwrap();
    assert!(cache.contains("hits 1, misses 1"), "{cache}");

    // No net front end on the direct path: `stats net` is an error.
    let err = command::run_line(&service, "stats net").unwrap_err();
    assert!(err.contains("no network front end"), "{err}");

    let json = command::run_line(&service, "stats --json").unwrap();
    let json = json.strip_prefix("ok ").unwrap();
    for key in [
        "\"service\"",
        "\"executor\"",
        "\"cache\"",
        "\"queries_served\":2",
        "\"p99_latency_us\"",
        "\"slow_queries\"",
    ] {
        assert!(json.contains(key), "stats --json missing {key}: {json}");
    }
    assert!(
        !json.contains("\"net\""),
        "no net scope without a front end"
    );

    // Reset zeroes counters but keeps the cache's entries and the
    // instruments registered.
    command::run_line(&service, "stats reset").unwrap();
    let m = service.metrics();
    assert_eq!(m.queries_served, 0);
    assert_eq!(m.max_queue_depth, 0, "high-water mark resets");
    let warm = service
        .query(mmjoin::Request::chain(["R", "S", "T"]))
        .unwrap();
    assert!(warm.cached, "reset must not drop cached results");
    assert_eq!(service.metrics().queries_served, 1);
    teardown();
}

#[test]
fn net_transport_traces_and_answers_stats_net() {
    let _guard = with_tracer();
    let tracer = Tracer::global();
    let service = std::sync::Arc::new(chain_service());
    let server = mmjoin_net::serve(service, mmjoin_net::NetConfig::default()).unwrap();
    let addr = server.addr();

    let mut client = mmjoin_net::Client::connect(addr).unwrap();
    let resp = client.call("query chain R S T").unwrap();
    assert!(resp.body.starts_with("ok rows "), "{}", resp.body);

    let net = client.call("stats net").unwrap();
    assert!(net.body.starts_with("ok connections 1"), "{}", net.body);
    assert!(net.body.contains("served 1"), "{}", net.body);

    let json = client.call("stats --json").unwrap();
    assert!(json.body.contains("\"net\""), "{}", json.body);
    assert!(json.body.contains("\"per_client_served\""), "{}", json.body);

    // `trace last <n>` over the wire exports every retained trace —
    // including the chain query's, which crossed the net queue and the
    // service queue. (`trace last` alone would return only the most
    // recent finished trace: the `stats` command right before it.)
    let last = client.call("trace last 10").unwrap();
    assert!(last.body.contains("net-queue"), "{}", last.body);
    assert!(last.body.contains("service-queue"), "{}", last.body);
    assert!(last.body.contains("\"traceEvents\""), "{}", last.body);

    let reset = client.call("stats reset").unwrap();
    assert!(reset.body.starts_with("ok stats reset"), "{}", reset.body);
    let net = client.call("stats net").unwrap();
    assert!(
        net.body.contains("requests 1"),
        "net counters reset over the wire: {}",
        net.body
    );

    client.call("shutdown").unwrap();
    server.wait();
    assert!(!tracer.last(usize::MAX).is_empty());
    teardown();
}
