//! Adversarial and boundary instances: shapes engineered to stress each
//! partition of Algorithm 1 (all-light, all-heavy, maximally skewed,
//! degenerate domains), checked across engines.

use mmjoin_api::{Engine, PairSink, Query};
use mmjoin_baseline::fulljoin::SortMergeEngine;
use mmjoin_baseline::nonmm::ExpandDedupEngine;
use mmjoin_core::{
    two_path_join_project, two_path_with_counts, JoinConfig, MmJoinEngine, PlanChoice,
};
use mmjoin_storage::{Relation, Value};

fn rel(edges: &[(Value, Value)]) -> Relation {
    Relation::from_edges(edges.iter().copied())
}

fn assert_all_engines_agree(r: &Relation, s: &Relation, label: &str) {
    let reference = SortMergeEngine.join_project(r, s);
    let query = Query::two_path(r, s).build().unwrap();
    let engines: Vec<Box<dyn Engine>> = vec![
        Box::new(MmJoinEngine::serial()),
        Box::new(MmJoinEngine::parallel(3)),
        Box::new(ExpandDedupEngine::serial()),
    ];
    for e in engines {
        let mut sink = PairSink::new();
        e.execute(&query, &mut sink).unwrap();
        assert_eq!(sink.pairs, reference, "{label}: {}", e.name());
    }
    // Forced extreme thresholds must also agree.
    for (d1, d2) in [(1, 1), (1, 1000), (1000, 1), (1000, 1000)] {
        let cfg = JoinConfig::with_deltas(d1, d2);
        assert_eq!(
            two_path_join_project(r, s, &cfg),
            reference,
            "{label}: Δ=({d1},{d2})"
        );
    }
}

/// One single `y` value shared by everything: the heaviest possible core.
#[test]
fn single_hub_element() {
    let edges: Vec<(Value, Value)> = (0..200).map(|x| (x, 0)).collect();
    let r = rel(&edges);
    assert_all_engines_agree(&r, &r, "single-hub");
    let out = two_path_join_project(&r, &r, &JoinConfig::default());
    assert_eq!(out.len(), 200 * 200);
}

/// A perfect matching: every value has degree exactly 1 (all light at any
/// threshold; full join == output).
#[test]
fn perfect_matching() {
    let edges: Vec<(Value, Value)> = (0..500).map(|i| (i, i)).collect();
    let r = rel(&edges);
    assert_all_engines_agree(&r, &r, "matching");
    let plan = mmjoin_core::choose_thresholds(&r, &r, &JoinConfig::default());
    assert_eq!(plan.choice, PlanChoice::Wcoj, "matching must pick WCOJ");
}

/// One gigantic set against many singletons: maximal head-degree skew.
#[test]
fn one_giant_set() {
    let mut edges: Vec<(Value, Value)> = (0..300).map(|e| (0, e)).collect();
    for i in 0..300u32 {
        edges.push((1 + i, i)); // singleton set per element
    }
    let r = rel(&edges);
    assert_all_engines_agree(&r, &r, "giant-set");
}

/// Star graph on the y side: element 0 in every set plus per-set private
/// elements — every pair connected through exactly one witness.
#[test]
fn shared_spine_private_tails() {
    let mut edges = Vec::new();
    for x in 0..150u32 {
        edges.push((x, 0));
        edges.push((x, 1 + x));
    }
    let r = rel(&edges);
    assert_all_engines_agree(&r, &r, "spine");
    let counts = two_path_with_counts(&r, &r, 1, &JoinConfig::with_deltas(2, 2));
    for &(a, b, c) in &counts {
        let expected = if a == b { 2 } else { 1 };
        assert_eq!(c, expected, "pair ({a},{b})");
    }
}

/// Bipartite-disjoint domains: R and S share no y value at all.
#[test]
fn disjoint_join_columns() {
    let r = rel(&[(0, 0), (1, 1), (2, 2)]);
    let s = rel(&[(0, 10), (1, 11)]);
    assert!(two_path_join_project(&r, &s, &JoinConfig::default()).is_empty());
    assert!(two_path_with_counts(&r, &s, 1, &JoinConfig::default()).is_empty());
}

/// Very large sparse ids (u32 towards the top of the domain) must not
/// overflow any index arithmetic.
#[test]
fn large_sparse_ids() {
    let big = 1_000_000u32;
    let r = rel(&[(big, big), (big - 1, big), (big, big - 1)]);
    let out = two_path_join_project(&r, &r, &JoinConfig::default());
    assert_eq!(
        out,
        vec![
            (big - 1, big - 1),
            (big - 1, big),
            (big, big - 1),
            (big, big)
        ]
    );
}

/// Two blocks whose degrees straddle any single threshold: forces output
/// pairs to be discovered jointly by light passes and the matrix.
#[test]
fn mixed_block_instance() {
    let mut edges = Vec::new();
    // Heavy block: 40 sets sharing elements 0..10.
    for x in 0..40u32 {
        for e in 0..10u32 {
            edges.push((x, e));
        }
    }
    // Light fringe: chains touching one heavy element each.
    for i in 0..60u32 {
        edges.push((100 + i, i % 10));
        edges.push((100 + i, 50 + i));
    }
    let r = rel(&edges);
    assert_all_engines_agree(&r, &r, "mixed-block");
    // Counting variant: spot check one heavy-light pair.
    let counts = two_path_with_counts(&r, &r, 1, &JoinConfig::with_deltas(5, 5));
    let get = |a: Value, b: Value| {
        counts
            .iter()
            .find(|&&(x, z, _)| x == a && z == b)
            .map(|&(_, _, c)| c)
    };
    assert_eq!(
        get(0, 100),
        Some(1),
        "heavy set 0 meets light set 100 via one element"
    );
    assert_eq!(
        get(0, 1),
        Some(10),
        "heavy pair shares all 10 core elements"
    );
}

/// Self-loops in graph form ((v, v) edges) are legal tuples and must not
/// confuse the set-view algorithms.
#[test]
fn self_loop_tuples() {
    let r = rel(&[(0, 0), (1, 1), (0, 1), (1, 0)]);
    assert_all_engines_agree(&r, &r, "self-loops");
}

/// Duplicate-free invariant: no engine may emit a pair twice even when all
/// three discovery paths (light-A, light-B, matrix) see the same pair.
#[test]
fn no_duplicate_output_pairs() {
    let mut edges = Vec::new();
    for x in 0..30u32 {
        for e in 0..8u32 {
            edges.push((x, e));
        }
    }
    let r = rel(&edges);
    for (d1, d2) in [(1, 1), (3, 3), (7, 2), (2, 7)] {
        let out = two_path_join_project(&r, &r, &JoinConfig::with_deltas(d1, d2));
        let mut dedup = out.clone();
        dedup.dedup();
        assert_eq!(out.len(), dedup.len(), "duplicates at Δ=({d1},{d2})");
        assert!(
            out.windows(2).all(|w| w[0] < w[1]),
            "output must be strictly sorted"
        );
    }
}
