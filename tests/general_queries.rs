//! Property tests for the query-graph IR and the decomposing planner:
//! composed-plan results must equal a naive materialize-everything
//! reference on random acyclic queries, the canonical 2-path graph must
//! degenerate to exactly the `Query::TwoPath` stream, and a 4-chain must
//! run end-to-end through the facade and the service (cached, then
//! epoch-invalidated).

use mmjoin::{
    Atom, Engine, JoinConfig, MmJoinEngine, Query, QueryGraph, Relation, Request, Service, VecSink,
};
use mmjoin_storage::Value;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn rel(edges: &[(Value, Value)]) -> Relation {
    Relation::from_edges(edges.iter().copied())
}

/// Brute-force reference: backtracking assignment over the atoms,
/// projected into a sorted distinct set.
fn naive(graph: &QueryGraph<'_>) -> Vec<Vec<Value>> {
    let mut remaining: Vec<&Atom> = graph.atoms().iter().collect();
    let mut ordered: Vec<&Atom> = vec![remaining.remove(0)];
    while !remaining.is_empty() {
        let pos = remaining
            .iter()
            .position(|a| {
                ordered
                    .iter()
                    .any(|o| [o.x, o.y].contains(&a.x) || [o.x, o.y].contains(&a.y))
            })
            .expect("connected graph");
        ordered.push(remaining.remove(pos));
    }
    fn go(
        ordered: &[&Atom],
        i: usize,
        bindings: &mut BTreeMap<u32, Value>,
        projection: &[u32],
        out: &mut BTreeSet<Vec<Value>>,
    ) {
        if i == ordered.len() {
            out.insert(projection.iter().map(|v| bindings[v]).collect());
            return;
        }
        let a = ordered[i];
        match (bindings.get(&a.x).copied(), bindings.get(&a.y).copied()) {
            (Some(x), Some(y)) => {
                if (x as usize) < a.relation.x_domain() && a.relation.contains(x, y) {
                    go(ordered, i + 1, bindings, projection, out);
                }
            }
            (Some(x), None) => {
                if (x as usize) < a.relation.x_domain() {
                    for &y in a.relation.ys_of(x) {
                        bindings.insert(a.y, y);
                        go(ordered, i + 1, bindings, projection, out);
                    }
                    bindings.remove(&a.y);
                }
            }
            (None, Some(y)) => {
                if (y as usize) < a.relation.y_domain() {
                    for &x in a.relation.xs_of(y) {
                        bindings.insert(a.x, x);
                        go(ordered, i + 1, bindings, projection, out);
                    }
                    bindings.remove(&a.x);
                }
            }
            (None, None) => {
                for &(x, y) in a.relation.edges() {
                    bindings.insert(a.x, x);
                    bindings.insert(a.y, y);
                    go(ordered, i + 1, bindings, projection, out);
                }
                bindings.remove(&a.x);
                bindings.remove(&a.y);
            }
        }
    }
    let mut out = BTreeSet::new();
    go(
        &ordered,
        0,
        &mut BTreeMap::new(),
        graph.projection(),
        &mut out,
    );
    out.into_iter().collect()
}

fn composed(graph: &QueryGraph<'_>) -> Vec<Vec<Value>> {
    let query = Query::general(graph.clone()).expect("valid graph");
    let mut sink = VecSink::new();
    MmJoinEngine::new(JoinConfig::default())
        .execute(&query, &mut sink)
        .expect("composed execution");
    sink.rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random chains (k = 2..5) equal the naive reference.
    #[test]
    fn random_chains_match_reference(
        e1 in proptest::collection::vec((0u32..12, 0u32..10), 0..50),
        e2 in proptest::collection::vec((0u32..10, 0u32..12), 0..50),
        e3 in proptest::collection::vec((0u32..12, 0u32..10), 0..50),
        e4 in proptest::collection::vec((0u32..10, 0u32..12), 0..50),
        k in 2usize..5,
    ) {
        let pool = [rel(&e1), rel(&e2), rel(&e3), rel(&e4)];
        let rels: Vec<&Relation> = pool.iter().take(k.max(2)).collect();
        let graph = QueryGraph::chain(&rels).unwrap();
        prop_assert_eq!(composed(&graph), naive(&graph));
    }

    /// Random stars (k = 1..4 legs) equal the naive reference.
    #[test]
    fn random_stars_match_reference(
        e1 in proptest::collection::vec((0u32..12, 0u32..8), 0..40),
        e2 in proptest::collection::vec((0u32..12, 0u32..8), 0..40),
        e3 in proptest::collection::vec((0u32..12, 0u32..8), 0..40),
        k in 1usize..4,
    ) {
        let pool = [rel(&e1), rel(&e2), rel(&e3)];
        let rels: Vec<&Relation> = pool.iter().take(k.max(1)).collect();
        let graph = QueryGraph::star(&rels).unwrap();
        prop_assert_eq!(composed(&graph), naive(&graph));
    }

    /// Random snowflakes — rays of random length around one centre, plus
    /// a pendant (non-projected leaf) atom exercising the semijoin rule —
    /// equal the naive reference.
    #[test]
    fn random_snowflakes_match_reference(
        e1 in proptest::collection::vec((0u32..10, 0u32..10), 1..40),
        e2 in proptest::collection::vec((0u32..10, 0u32..10), 1..40),
        e3 in proptest::collection::vec((0u32..10, 0u32..10), 1..40),
        ray_lens in proptest::collection::vec(1usize..3, 2..4),
        with_pendant in any::<bool>(),
    ) {
        let pool = [rel(&e1), rel(&e2), rel(&e3)];
        const CENTER: u32 = 100;
        let mut atoms: Vec<Atom> = Vec::new();
        let mut projection: Vec<u32> = Vec::new();
        let mut interior = 10u32; // fresh interior variable ids
        for (i, &len) in ray_lens.iter().enumerate() {
            // Ray: tip (projected, var i) — interior… — CENTER.
            let tip = i as u32;
            projection.push(tip);
            let mut from = tip;
            for hop in 0..len {
                let to = if hop + 1 == len { CENTER } else {
                    interior += 1;
                    interior
                };
                atoms.push(Atom {
                    relation: &pool[(i + hop) % pool.len()],
                    x: from,
                    y: to,
                });
                from = to;
            }
        }
        if with_pendant {
            atoms.push(Atom { relation: &pool[0], x: CENTER, y: 200 });
        }
        let graph = QueryGraph::new(atoms, projection).unwrap();
        prop_assert_eq!(composed(&graph), naive(&graph));
    }

    /// The canonical 2-path graph degenerates to exactly the existing
    /// `Query::TwoPath` result — same rows, same order.
    #[test]
    fn two_path_graph_degenerates_exactly(
        r_edges in proptest::collection::vec((0u32..15, 0u32..12), 0..70),
        s_edges in proptest::collection::vec((0u32..15, 0u32..12), 0..70),
    ) {
        let (r, s) = (rel(&r_edges), rel(&s_edges));
        let engine = MmJoinEngine::new(JoinConfig::default());

        let mut classic = VecSink::new();
        engine
            .execute(&Query::two_path(&r, &s).build().unwrap(), &mut classic)
            .unwrap();

        let graph = QueryGraph::two_path(&r, &s);
        let mut general = VecSink::new();
        engine
            .execute(&Query::general(graph).unwrap(), &mut general)
            .unwrap();

        prop_assert_eq!(general.rows, classic.rows, "stream must match exactly");
    }
}

/// The acceptance-criterion path: a 4-path chain end-to-end through the
/// facade engine and the service — cold, cached, isomorphic-rewrite hit,
/// then epoch-invalidated by a delta on one referenced relation.
#[test]
fn four_chain_end_to_end_through_facade_and_service() {
    let chain_rels = mmjoin_datagen::generate_chain(0.02, 7, 4);
    let refs: Vec<&Relation> = chain_rels.iter().collect();

    // Facade: composed plan equals the naive reference.
    let graph = QueryGraph::chain(&refs).unwrap();
    let expected = naive(&graph);
    assert!(!expected.is_empty(), "instance must produce rows");
    assert_eq!(composed(&graph), expected);

    // Service: same rows, cached on repeat, invalidated by updates.
    let service = Service::with_default_registry(2);
    for (i, r) in chain_rels.iter().enumerate() {
        service.register(format!("C{i}"), r.clone());
    }
    let names = ["C0", "C1", "C2", "C3"];
    let cold = service.query(Request::chain(names)).unwrap();
    assert!(!cold.cached);
    let mut rows = (*cold.rows).clone();
    rows.sort();
    assert_eq!(rows, expected);

    let warm = service.query(Request::chain(names)).unwrap();
    assert!(warm.cached, "repeat must hit the cache");
    assert_eq!(warm.rows, cold.rows);

    // A delta on the *third* relation of the chain must invalidate.
    let epoch_before = service.catalog_epoch();
    service.insert("C2", [(9_999u32, 9_999u32)]).unwrap();
    assert!(service.catalog_epoch() > epoch_before);
    let after = service.query(Request::chain(names)).unwrap();
    assert!(!after.cached, "update to any referenced relation must miss");

    // Explain never executes but sees the now-warm entry afterwards.
    let lines = service.explain(Request::chain(names)).unwrap();
    assert!(lines.join("\n").contains("cache hit"));
}

/// Capability checks: only the composed MMJoin executor advertises
/// general queries; unplannable shapes are rejected by `supports`.
#[test]
fn registry_capabilities_for_general_queries() {
    let registry = mmjoin::default_registry(1);
    let r = rel(&[(0, 0), (1, 0)]);
    let pool = [r.clone(), r.clone(), r.clone()];
    let graph = QueryGraph::chain(&pool).unwrap();
    let query = Query::general(graph).unwrap();
    let supporting: Vec<&str> = registry
        .engines_for(&query)
        .iter()
        .map(|e| e.name())
        .collect();
    assert_eq!(supporting, vec!["MMJoin"]);

    // A projected interior variable is not plannable: nothing supports it.
    let atoms = vec![
        Atom {
            relation: &r,
            x: 0,
            y: 1,
        },
        Atom {
            relation: &r,
            x: 1,
            y: 2,
        },
    ];
    let graph = QueryGraph::new(atoms, vec![0, 1, 2]).unwrap();
    let query = Query::general(graph).unwrap();
    assert!(registry.engines_for(&query).is_empty());
}
