//! Service-layer integration tests: the acceptance smoke test (all four
//! families from concurrent clients with cache hits and invalidation),
//! fingerprint canonicalization properties, and byte-identical cache
//! semantics.

use mmjoin::{QuerySpec, Relation, Request, Service, ServiceConfig, Value};
use mmjoin_datagen::DatasetKind;
use proptest::prelude::*;

const SEED: u64 = 2020;

fn smoke_service() -> Service {
    let service = Service::with_config(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    service.register(
        "jokes",
        mmjoin_datagen::generate(DatasetKind::Jokes, 0.02, SEED),
    );
    service.register(
        "dblp",
        mmjoin_datagen::generate(DatasetKind::Dblp, 0.02, SEED),
    );
    service
}

/// The acceptance-criteria smoke test: ≥ 2 relations, all four query
/// families, ≥ 4 concurrent client threads, ≥ 1 cache hit with identical
/// results, and invalidation after a relation update.
#[test]
fn concurrent_smoke_all_families() {
    let service = smoke_service();
    let workload = vec![
        Request::two_path("jokes", "jokes"),
        Request::two_path_counts("dblp", "dblp", 2),
        Request::star(["dblp", "dblp", "dblp"]),
        Request::similarity("jokes", 2),
        Request::containment("dblp"),
    ];

    // Cold reference pass (single-threaded) for row comparison.
    let reference: Vec<_> = workload
        .iter()
        .map(|r| service.query(r.clone()).expect("cold query"))
        .collect();

    // 4 client threads × the whole workload: every result must equal the
    // reference byte for byte, cached or not.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let service = &service;
            let workload = &workload;
            let reference = &reference;
            scope.spawn(move || {
                for (request, expected) in workload.iter().zip(reference) {
                    let got = service.query(request.clone()).expect("warm query");
                    assert_eq!(got.rows, expected.rows, "{request:?}");
                    assert_eq!(got.counts, expected.counts, "{request:?}");
                    assert_eq!(got.arity, expected.arity);
                }
            });
        }
    });

    let metrics = service.metrics();
    assert_eq!(metrics.queries_served, 25, "5 cold + 4×5 warm");
    assert!(
        metrics.cache_hits >= 20,
        "all warm queries must hit: {metrics:?}"
    );
    assert_eq!(metrics.errors, 0);

    // Invalidation: a brand-new set sharing a fresh element with set 0
    // guarantees output pairs that did not exist before the update.
    let mut edges: Vec<(Value, Value)> = service.relation_edges("jokes").unwrap();
    let new_set = edges.iter().map(|&(x, _)| x).max().unwrap_or(0) + 1;
    let new_elem = edges.iter().map(|&(_, y)| y).max().unwrap_or(0) + 1;
    edges.push((new_set, new_elem));
    edges.push((0, new_elem));
    service
        .update("jokes", Relation::from_edges(edges))
        .unwrap();

    let fresh = service.query(Request::two_path("jokes", "jokes")).unwrap();
    assert!(!fresh.cached, "update must invalidate the cached result");
    assert_ne!(
        fresh.rows, reference[0].rows,
        "the hub element creates new output pairs"
    );
}

/// Cache hits return byte-identical rows (and counts) to cold execution,
/// across every family.
#[test]
fn cache_hits_are_byte_identical() {
    let service = smoke_service();
    for request in [
        Request::two_path("dblp", "dblp"),
        Request::two_path_counts("jokes", "jokes", 3),
        Request::star(["dblp", "dblp"]),
        Request::similarity("dblp", 1).ordered(),
        Request::containment("jokes"),
        Request::two_path("jokes", "jokes").limit(17),
    ] {
        let cold = service.query(request.clone()).unwrap();
        let warm = service.query(request.clone()).unwrap();
        assert!(!cold.cached && warm.cached, "{request:?}");
        assert_eq!(cold.rows, warm.rows, "{request:?}");
        assert_eq!(cold.counts, warm.counts, "{request:?}");
        assert_eq!(cold.stats.engine, warm.stats.engine);
    }
}

/// A catalog update never serves a stale cached result, even when an
/// unrelated relation is updated in between (which must NOT invalidate).
#[test]
fn unrelated_update_keeps_cache_warm() {
    let service = smoke_service();
    let request = Request::two_path("dblp", "dblp");
    let cold = service.query(request.clone()).unwrap();

    // Updating jokes must not evict dblp results…
    let jokes = service.relation_edges("jokes").unwrap();
    service
        .update("jokes", Relation::from_edges(jokes))
        .unwrap();
    let warm = service.query(request.clone()).unwrap();
    assert!(warm.cached, "unrelated update must not invalidate");
    assert_eq!(cold.rows, warm.rows);

    // …while updating dblp itself must.
    let mut dblp = service.relation_edges("dblp").unwrap();
    let max_y = dblp.iter().map(|&(_, y)| y).max().unwrap_or(0);
    dblp.push((0, max_y + 1));
    dblp.push((1, max_y + 1));
    service.update("dblp", Relation::from_edges(dblp)).unwrap();
    let fresh = service.query(request).unwrap();
    assert!(!fresh.cached, "own update must invalidate");
}

fn name_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "R".to_string(),
        "S".to_string(),
        " R ".to_string(),
        "R\t".to_string(),
        "rel_a".to_string(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonicalization is idempotent and fingerprint-stable: hashing a
    /// request equals hashing its canonical form, and canonicalizing
    /// twice changes nothing.
    #[test]
    fn fingerprint_is_canonicalization_stable(
        r in name_strategy(),
        s in name_strategy(),
        with_counts in any::<bool>(),
        min_count in 0u32..5,
        limit in prop::option::of(0u64..100),
    ) {
        let request = Request {
            spec: QuerySpec::TwoPath { r, s, with_counts, min_count },
            limit,
            engine: None,
        };
        let canon = request.clone().canonical();
        prop_assert_eq!(canon.clone().canonical(), canon.clone(), "idempotent");
        prop_assert_eq!(request.fingerprint(), canon.fingerprint());
    }

    /// Semantically equal 2-path requests hash equal: `min_count` is dead
    /// when counts are off, and name whitespace never matters.
    #[test]
    fn semantically_equal_requests_hash_equal(
        min_a in 0u32..8,
        min_b in 0u32..8,
        pad_left in 0usize..3,
        pad_right in 0usize..3,
    ) {
        let a = Request {
            spec: QuerySpec::TwoPath {
                r: format!("{}R{}", " ".repeat(pad_left), " ".repeat(pad_right)),
                s: "S".into(),
                with_counts: false,
                min_count: min_a,
            },
            limit: None,
            engine: None,
        };
        let b = Request {
            spec: QuerySpec::TwoPath {
                r: "R".into(),
                s: "S".into(),
                with_counts: false,
                min_count: min_b,
            },
            limit: None,
            engine: None,
        };
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }

    /// Necessary distinctions are preserved: different relation names,
    /// thresholds, families, or limits never collapse to one entry.
    #[test]
    fn distinct_requests_hash_distinct(c1 in 1u32..50, c2 in 1u32..50) {
        prop_assume!(c1 != c2);
        prop_assert_ne!(
            Request::similarity("R", c1).fingerprint(),
            Request::similarity("R", c2).fingerprint()
        );
        prop_assert_ne!(
            Request::similarity("R", c1).fingerprint(),
            Request::similarity("S", c1).fingerprint()
        );
        prop_assert_ne!(
            Request::similarity("R", c1).fingerprint(),
            Request::containment("R").fingerprint()
        );
        prop_assert_ne!(
            Request::two_path("R", "S").limit(c1 as u64).fingerprint(),
            Request::two_path("R", "S").limit(c2 as u64).fingerprint()
        );
    }

    /// End-to-end: equal-fingerprint requests actually share one cache
    /// entry in a live service.
    #[test]
    fn equal_fingerprints_share_cache_entry(min_count in 0u32..5) {
        let service = Service::with_config(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        service.register("R", Relation::from_edges([(0, 0), (1, 0), (2, 1)]));
        let sloppy = Request {
            spec: QuerySpec::TwoPath {
                r: " R".into(),
                s: "R ".into(),
                with_counts: false,
                min_count,
            },
            limit: None,
            engine: None,
        };
        let tidy = Request::two_path("R", "R");
        let a = service.query(sloppy).unwrap();
        let b = service.query(tidy).unwrap();
        prop_assert!(!a.cached && b.cached, "canonical forms must collide");
        prop_assert_eq!(a.rows, b.rows);
    }
}
