//! Kernel-equivalence suite for the GEMM dispatch ladder.
//!
//! Every kernel [`available_kernels`] can dispatch to — scalar always;
//! AVX2/AVX-512 under `--features simd` on capable hardware — must agree
//! with the naive triple loop:
//!
//! * **bit-exactly** on 0/1 adjacency matrices (all intermediates are
//!   small integers, exact in `f32`; FMA contraction cannot change an
//!   exact result), the representation every join heavy-core uses;
//! * within FMA-rounding tolerance on arbitrary finite floats.
//!
//! CI runs this suite once per feature leg, so a kernel that only exists
//! on the `simd` leg is still proven against the same reference. The
//! shapes cross every blocking boundary: sub-tile, non-multiples of the
//! lane width, single row/column, and sizes straddling the KC/NC panels.

use mmjoin_matrix::kernel::{KC, MR, NC};
use mmjoin_matrix::{
    active_kernel, available_kernels, matmul_naive, matmul_parallel_with_kernel,
    matmul_with_kernel, DenseMatrix,
};
use proptest::prelude::*;

/// Deterministic 0/1 adjacency with roughly `1/q` density.
fn adjacency(rows: usize, cols: usize, q: usize, phase: usize) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |i, j| {
        ((i + phase) * 31 + j * 17).is_multiple_of(q) as u8 as f32
    })
}

/// Shapes chosen to hit every remainder path: tiles narrower than a
/// vector, ragged k groups, single row/column, and panel boundaries.
fn edge_shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (1, KC + 3, 1),
        (MR - 1, 5, 7),
        (MR + 1, 17, 33),
        (7, 1, 64),
        (64, 3, NC + 5),
        (5, KC - 1, 31),
        (MR, KC, 2 * 16),
        (33, KC + 17, 65),
        (2, 2 * KC + 5, 130),
    ]
}

/// Shapes that stress the parallel tile scheduler's decomposition:
/// band boundaries on and off MR multiples, row counts smaller than the
/// thread count, k crossing the serial kernel's panel depth, and column
/// counts straddling the NC j-panel boundary.
fn band_edge_shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 9, 5),                 // single row, more threads than bands
        (2 * MR, 33, 19),          // fewer MR blocks than 8 threads
        (8 * MR + 1, KC + 3, 40),  // row tail past the last full band
        (3, 7, NC + 9),            // partial MR block × two j-panels
        (37, 2 * KC + 5, NC + 31), // multi k-panel × multi j-panel grid
        (97, 61, 143),
    ]
}

/// The tile scheduler must be **bit-exact** against the serial
/// dispatched kernel — not merely tolerance-close — at every tested
/// thread count, for every dispatchable kernel. On 0/1 adjacency inputs
/// this is the correctness bar every join heavy-core relies on; the
/// general-float variant below proves the stronger schedule-equivalence
/// claim (identical contraction order, hence identical FMA rounding).
#[test]
fn parallel_scheduler_is_bit_exact_on_adjacency_shapes() {
    for (m, k, n) in band_edge_shapes() {
        for density in [2usize, 7] {
            let a = adjacency(m, k, density, 0);
            let b = adjacency(k, n, density, 1);
            for kernel in available_kernels() {
                let serial = matmul_with_kernel(kernel, &a, &b);
                for threads in [2usize, 8] {
                    let par = matmul_parallel_with_kernel(kernel, &a, &b, threads);
                    assert_eq!(
                        par.data(),
                        serial.data(),
                        "kernel {kernel} diverges on {m}x{k}x{n} \
                         (density 1/{density}, threads {threads})"
                    );
                }
            }
        }
    }
}

/// Arbitrary floats make accumulation order observable through FMA
/// rounding. The scheduler slices k on the serial kernel's own panel
/// boundaries and keeps MR/NC alignment, so even here the parallel
/// product must be bit-identical at threads ∈ {2, 8}.
#[test]
fn parallel_scheduler_is_bit_exact_on_general_floats() {
    let val = |i: usize, j: usize, salt: u64| {
        let h = (i as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((j as u64).wrapping_mul(0xD1B54A32D192ED03))
            .wrapping_add(salt.wrapping_mul(0x94D049BB133111EB));
        ((h >> 32) as f32 / u32::MAX as f32) * 4.0 - 2.0
    };
    for (m, k, n) in band_edge_shapes() {
        let a = DenseMatrix::from_fn(m, k, |i, j| val(i, j, 1));
        let b = DenseMatrix::from_fn(k, n, |i, j| val(i, j, 2));
        for kernel in available_kernels() {
            let serial = matmul_with_kernel(kernel, &a, &b);
            for threads in [2usize, 8] {
                let par = matmul_parallel_with_kernel(kernel, &a, &b, threads);
                assert_eq!(
                    par.data(),
                    serial.data(),
                    "kernel {kernel} reorders floats on {m}x{k}x{n} (threads {threads})"
                );
            }
        }
    }
}

#[test]
fn active_kernel_is_dispatchable() {
    let kernels = available_kernels();
    assert!(
        kernels.contains(&active_kernel()),
        "active kernel {} not in available set {kernels:?}",
        active_kernel()
    );
}

#[test]
fn every_kernel_is_bit_exact_on_adjacency_edge_shapes() {
    for (m, k, n) in edge_shapes() {
        for density in [2usize, 4, 7] {
            let a = adjacency(m, k, density, 0);
            let b = adjacency(k, n, density, 1);
            let reference = matmul_naive(&a, &b);
            for kernel in available_kernels() {
                let got = matmul_with_kernel(kernel, &a, &b);
                assert_eq!(
                    got.data(),
                    reference.data(),
                    "kernel {kernel} diverges on {m}x{k}x{n} (density 1/{density})"
                );
            }
        }
    }
}

#[test]
fn every_kernel_handles_fully_dense_and_fully_zero_blocks() {
    // All-ones forces the register-tiled dense path; all-zeros must
    // short-circuit without touching C.
    for (m, k, n) in [(MR, KC, 64), (2 * MR + 1, KC + 9, 33)] {
        let ones = DenseMatrix::from_fn(m, k, |_, _| 1.0);
        let bm = adjacency(k, n, 3, 2);
        let zeros = DenseMatrix::from_fn(m, k, |_, _| 0.0);
        let reference = matmul_naive(&ones, &bm);
        for kernel in available_kernels() {
            assert_eq!(
                matmul_with_kernel(kernel, &ones, &bm).data(),
                reference.data(),
                "kernel {kernel} diverges on all-ones {m}x{k}x{n}"
            );
            let out = matmul_with_kernel(kernel, &zeros, &bm);
            assert!(
                out.data().iter().all(|&x| x == 0.0),
                "kernel {kernel} produced nonzeros from a zero A"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary small 0/1 matrices: dispatch stays bit-exact under
    /// random shapes and densities, not just the hand-picked grid.
    #[test]
    fn random_adjacency_products_are_bit_exact(
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..48,
        seed in 0u64..1024,
    ) {
        let bit = |i: usize, j: usize, salt: u64| {
            let h = (i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((j as u64).wrapping_mul(0xD1B54A32D192ED03))
                .wrapping_add(seed.wrapping_mul(0xBF58476D1CE4E5B9))
                .wrapping_add(salt);
            ((h >> 17) & 3 == 0) as u8 as f32
        };
        let a = DenseMatrix::from_fn(m, k, |i, j| bit(i, j, 0));
        let b = DenseMatrix::from_fn(k, n, |i, j| bit(i, j, 1));
        let reference = matmul_naive(&a, &b);
        for kernel in available_kernels() {
            prop_assert_eq!(
                matmul_with_kernel(kernel, &a, &b).data(),
                reference.data(),
                "kernel {} diverges on {}x{}x{}", kernel, m, k, n
            );
        }
    }

    /// General floats (including negative zero and denormal-ish values):
    /// kernels may differ from the naive loop by FMA rounding only.
    #[test]
    fn random_float_products_agree_within_fma_tolerance(
        m in 1usize..12,
        k in 1usize..32,
        n in 1usize..40,
        seed in 0u64..1024,
    ) {
        let val = |i: usize, j: usize, salt: u64| {
            let h = (i as u64)
                .wrapping_mul(0xD1B54A32D192ED03)
                .wrapping_add((j as u64).wrapping_mul(0x9E3779B97F4A7C15))
                .wrapping_add(seed.wrapping_add(salt).wrapping_mul(0x94D049BB133111EB));
            match h % 7 {
                0 => 0.0,
                1 => -0.0,
                2 => -1.5,
                _ => ((h >> 32) as f32 / u32::MAX as f32) * 4.0 - 2.0,
            }
        };
        let a = DenseMatrix::from_fn(m, k, |i, j| val(i, j, 0));
        let b = DenseMatrix::from_fn(k, n, |i, j| val(i, j, 1));
        let reference = matmul_naive(&a, &b);
        for kernel in available_kernels() {
            let got = matmul_with_kernel(kernel, &a, &b);
            for (x, y) in got.data().iter().zip(reference.data()) {
                let tol = 1e-4f32.max(y.abs() * 1e-5);
                prop_assert!(
                    (x - y).abs() <= tol,
                    "kernel {} off by {} (got {}, want {})", kernel, (x - y).abs(), x, y
                );
            }
        }
    }
}
