//! Parallel-vs-serial consistency: every multi-threaded code path must be
//! bit-identical to its serial counterpart (coordination-free parallelism
//! means no output may depend on scheduling).

use mmjoin_baseline::nonmm::ExpandDedupEngine;
use mmjoin_core::{star_join_project_mm, two_path_join_project, two_path_with_counts, JoinConfig};
use mmjoin_datagen::DatasetKind;
use mmjoin_matrix::{matmul, matmul_parallel, DenseMatrix};
use mmjoin_scj::{set_containment_join, ScjAlgorithm};
use mmjoin_ssj::{unordered_ssj, SizeAwarePPOpts, SsjAlgorithm};

const SEED: u64 = 1234;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn cfg(threads: usize) -> JoinConfig {
    JoinConfig {
        threads,
        ..JoinConfig::default()
    }
}

#[test]
fn gemm_parallel_consistency_on_many_shapes() {
    for &(m, k, n) in &[
        (64usize, 64usize, 64usize),
        (33, 129, 65),
        (200, 17, 311),
        (1, 500, 1),
    ] {
        let a = DenseMatrix::from_fn(m, k, |i, j| ((i * 7 + j * 3) % 4 == 0) as u8 as f32);
        let b = DenseMatrix::from_fn(k, n, |i, j| ((i * 5 + j * 11) % 3 == 0) as u8 as f32);
        let serial = matmul(&a, &b);
        for &t in &THREADS {
            assert_eq!(matmul_parallel(&a, &b, t), serial, "({m},{k},{n}) x{t}");
        }
    }
}

#[test]
fn mmjoin_two_path_parallel_consistency() {
    for kind in [DatasetKind::Jokes, DatasetKind::Words, DatasetKind::Dblp] {
        let r = mmjoin_datagen::generate(kind, 0.03, SEED);
        let serial = two_path_join_project(&r, &r, &cfg(1));
        for &t in &THREADS {
            assert_eq!(
                two_path_join_project(&r, &r, &cfg(t)),
                serial,
                "{kind:?} x{t}"
            );
        }
    }
}

#[test]
fn counting_parallel_consistency() {
    let r = mmjoin_datagen::generate(DatasetKind::Protein, 0.02, SEED);
    let serial = two_path_with_counts(&r, &r, 2, &JoinConfig::default());
    for &t in &THREADS {
        let cfg = JoinConfig {
            threads: t,
            ..JoinConfig::default()
        };
        assert_eq!(two_path_with_counts(&r, &r, 2, &cfg), serial, "threads={t}");
    }
}

#[test]
fn star_parallel_consistency() {
    let rels = mmjoin_datagen::generate_star(DatasetKind::Image, 0.01, SEED, 3);
    let serial = star_join_project_mm(&rels, &cfg(1));
    for &t in &THREADS {
        assert_eq!(star_join_project_mm(&rels, &cfg(t)), serial, "threads={t}");
    }
}

#[test]
fn nonmm_parallel_consistency() {
    let r = mmjoin_datagen::generate(DatasetKind::Words, 0.03, SEED);
    let serial = ExpandDedupEngine::serial().join_project(&r, &r);
    for &t in &THREADS {
        assert_eq!(
            ExpandDedupEngine::parallel(t).join_project(&r, &r),
            serial,
            "threads={t}"
        );
    }
}

#[test]
fn ssj_parallel_consistency() {
    let r = mmjoin_datagen::generate(DatasetKind::Jokes, 0.02, SEED);
    for algo in [
        SsjAlgorithm::SizeAware,
        SsjAlgorithm::SizeAwarePP(SizeAwarePPOpts::all()),
        SsjAlgorithm::MmJoin,
    ] {
        let serial = unordered_ssj(&r, 2, &algo, &cfg(1));
        for &t in &THREADS {
            assert_eq!(
                unordered_ssj(&r, 2, &algo, &cfg(t)),
                serial,
                "{algo:?} x{t}"
            );
        }
    }
}

#[test]
fn scj_parallel_consistency() {
    let r = mmjoin_datagen::generate(DatasetKind::Image, 0.02, SEED);
    for algo in [
        ScjAlgorithm::Pretti,
        ScjAlgorithm::LimitPlus { limit: 2 },
        ScjAlgorithm::PieJoin,
        ScjAlgorithm::MmJoin,
    ] {
        let serial = set_containment_join(&r, &algo, &cfg(1));
        for &t in &THREADS {
            assert_eq!(
                set_containment_join(&r, &algo, &cfg(t)),
                serial,
                "{algo:?} x{t}"
            );
        }
    }
}

/// The registry's parallel roster must match its serial roster on every
/// family — the engine-level counterpart of the per-algorithm checks
/// above.
#[test]
fn registry_parallel_consistency() {
    use mmjoin::{default_registry, Query, VecSink};
    let r = mmjoin_datagen::generate(DatasetKind::Jokes, 0.02, SEED);
    let serial = default_registry(1);
    let q = Query::two_path(&r, &r).build().unwrap();
    for &t in &THREADS {
        let parallel = default_registry(t);
        for engine in serial.engines_for(&q) {
            let mut s1 = VecSink::new();
            engine.execute(&q, &mut s1).unwrap();
            let mut s2 = VecSink::new();
            parallel
                .get(engine.name())
                .expect("same roster")
                .execute(&q, &mut s2)
                .unwrap();
            assert_eq!(s1.rows, s2.rows, "{} x{t}", engine.name());
        }
    }
}
