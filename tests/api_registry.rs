//! Unified-API integration tests: registry round-trips, streaming sinks
//! vs materialisation, query-builder validation, and ExecStats contents.

use mmjoin::{
    default_registry, CountSink, Engine, EngineError, EngineRegistry, ForEachSink, PairSink,
    PlanKind, Query, QueryError, VecSink,
};
use mmjoin_core::{JoinConfig, MmJoinEngine};
use mmjoin_datagen::DatasetKind;
use mmjoin_storage::{Relation, Value};

fn rel(edges: &[(Value, Value)]) -> Relation {
    Relation::from_edges(edges.iter().copied())
}

#[test]
fn registry_register_lookup_execute_round_trip() {
    let mut registry = EngineRegistry::new();
    assert!(registry.is_empty());
    registry.register(Box::new(MmJoinEngine::serial()));
    assert_eq!(registry.names(), vec!["MMJoin"]);

    let r = rel(&[(0, 0), (1, 0), (2, 1)]);
    let q = Query::two_path(&r, &r).build().unwrap();

    // Lookup by name, execute, and compare with direct execution.
    let engine = registry.get("MMJoin").expect("registered engine resolves");
    let mut direct = PairSink::new();
    engine.execute(&q, &mut direct).unwrap();
    let mut by_name = PairSink::new();
    let stats = registry.execute("MMJoin", &q, &mut by_name).unwrap();
    assert_eq!(direct.pairs, by_name.pairs);
    assert_eq!(stats.rows, direct.pairs.len() as u64);

    // Unknown names fail with a dedicated error.
    let mut sink = CountSink::new();
    assert!(matches!(
        registry.execute("no-such-engine", &q, &mut sink),
        Err(EngineError::UnknownEngine(_))
    ));
}

#[test]
fn streaming_sink_agrees_with_materializing_sink() {
    let r = mmjoin_datagen::generate(DatasetKind::Jokes, 0.02, 5);
    let registry = default_registry(1);
    let queries = [
        Query::two_path(&r, &r).build().unwrap(),
        Query::two_path(&r, &r).min_count(2).build().unwrap(),
        Query::similarity(&r, 2).build().unwrap(),
        Query::similarity(&r, 2).ordered().build().unwrap(),
        Query::containment(&r).build().unwrap(),
    ];
    for q in &queries {
        for engine in registry.engines_for(q) {
            // Fully materialised…
            let mut vec_sink = VecSink::new();
            let vec_stats = engine.execute(q, &mut vec_sink).unwrap();
            // …streamed row-by-row without storing…
            let mut count_sink = CountSink::new();
            let count_stats = engine.execute(q, &mut count_sink).unwrap();
            // …and through a closure.
            let mut streamed: Vec<(Vec<Value>, u32)> = Vec::new();
            let mut each = ForEachSink(|row: &[Value], c| streamed.push((row.to_vec(), c)));
            engine.execute(q, &mut each).unwrap();

            assert_eq!(
                vec_sink.rows.len() as u64,
                count_sink.rows,
                "{}: streaming and materialising sinks disagree",
                engine.name()
            );
            assert_eq!(vec_stats.rows, count_stats.rows);
            let from_each: Vec<Vec<Value>> = streamed.iter().map(|(r, _)| r.clone()).collect();
            assert_eq!(vec_sink.rows, from_each, "{}", engine.name());
            let counts_each: Vec<u32> = streamed.iter().map(|&(_, c)| c).collect();
            assert_eq!(vec_sink.counts, counts_each, "{}", engine.name());
        }
    }
}

#[test]
fn star_query_through_registry() {
    let rels = vec![
        rel(&[(0, 0), (1, 0), (2, 1)]),
        rel(&[(5, 0), (6, 1)]),
        rel(&[(8, 0), (9, 0), (9, 1)]),
    ];
    let registry = default_registry(2);
    let q = Query::star(&rels).build().unwrap();
    let engines = registry.engines_for(&q);
    assert!(engines.len() >= 4, "star roster: {:?}", registry.names());
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for e in engines {
        let mut sink = VecSink::new();
        e.execute(&q, &mut sink).unwrap();
        assert_eq!(sink.arity, 3, "{}", e.name());
        match &reference {
            None => reference = Some(sink.rows),
            Some(r0) => assert_eq!(&sink.rows, r0, "{}", e.name()),
        }
    }
}

#[test]
fn builder_validation_errors() {
    let r = rel(&[(0, 0)]);

    // Arity-0 star.
    let empty: Vec<Relation> = Vec::new();
    assert_eq!(
        Query::star(&empty).build().unwrap_err(),
        QueryError::EmptyStar
    );

    // c = 0 similarity threshold.
    assert_eq!(
        Query::similarity(&r, 0).build().unwrap_err(),
        QueryError::ZeroSimilarityThreshold
    );

    // min_count = 0 counting query.
    assert_eq!(
        Query::two_path(&r, &r).min_count(0).build().unwrap_err(),
        QueryError::ZeroMinCount
    );

    // Hand-built invalid queries are caught by execute() too, registry-wide.
    let registry = default_registry(1);
    let bad = Query::SimilarityJoin {
        r: &r,
        c: 0,
        ordered: false,
    };
    let probe = Query::SimilarityJoin {
        r: &r,
        c: 1,
        ordered: false,
    };
    for engine in registry.iter().filter(|e| e.supports(&probe)) {
        let mut sink = PairSink::new();
        assert!(
            matches!(
                engine.execute(&bad, &mut sink),
                Err(EngineError::InvalidQuery(
                    QueryError::ZeroSimilarityThreshold
                ))
            ),
            "{} accepted an invalid query",
            engine.name()
        );
    }
}

#[test]
fn unsupported_family_errors_carry_engine_and_family() {
    let registry = default_registry(1);
    let r = rel(&[(0, 0)]);
    let counting = Query::two_path(&r, &r).with_counts().build().unwrap();
    let engine = registry.get("HashJoin(Postgres)").unwrap();
    let mut sink = PairSink::new();
    match engine.execute(&counting, &mut sink).unwrap_err() {
        EngineError::Unsupported { engine, family } => {
            assert_eq!(engine, "HashJoin(Postgres)");
            assert_eq!(family.to_string(), "two-path");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
}

#[test]
fn exec_stats_report_plan_for_mmjoin_runs() {
    // Dense generated data: the optimizer should partition and report
    // concrete thresholds through the registry.
    let r = mmjoin_datagen::generate(DatasetKind::Jokes, 0.04, 11);
    let registry = default_registry(1);
    let q = Query::two_path(&r, &r).build().unwrap();
    let mut sink = CountSink::new();
    let stats = registry.execute("MMJoin", &q, &mut sink).unwrap();
    let plan = stats.plan.expect("MMJoin reports its plan");
    match plan.kind {
        PlanKind::MatrixPartitioned => {
            let d1 = plan.delta1.expect("Δ1 reported");
            let d2 = plan.delta2.expect("Δ2 reported");
            assert!(d1 >= 1 && d2 >= 1);
            let (u, v, w) = plan.heavy_dims.expect("heavy split sizes reported");
            assert!(u > 0 && v > 0 && w > 0, "dense data must have a heavy core");
            let (light_r, light_s) = plan.light_tuples.expect("light split sizes reported");
            assert!(light_r <= r.len() as u64 && light_s <= r.len() as u64);
        }
        PlanKind::Wcoj => panic!("dense Jokes data should take the matrix plan"),
    }

    // A forced override must surface verbatim.
    let engine = MmJoinEngine::new(JoinConfig::with_deltas(4, 7));
    let mut sink = CountSink::new();
    let stats = Engine::execute(&engine, &q, &mut sink).unwrap();
    let plan = stats.plan.unwrap();
    assert_eq!((plan.delta1, plan.delta2), (Some(4), Some(7)));
}

#[test]
fn registry_replacement_is_latest_wins() {
    let mut registry = default_registry(1);
    let before = registry.len();
    // Re-register MMJoin with a forced-threshold configuration.
    registry.register(Box::new(MmJoinEngine::new(JoinConfig::with_deltas(2, 2))));
    assert_eq!(
        registry.len(),
        before,
        "replacement must not grow the roster"
    );
    let r = rel(&[(0, 0), (1, 0)]);
    let q = Query::two_path(&r, &r).build().unwrap();
    let mut sink = CountSink::new();
    let stats = registry.execute("MMJoin", &q, &mut sink).unwrap();
    assert_eq!(
        stats.plan.unwrap().delta1,
        Some(2),
        "replacement engine must serve"
    );
}
