//! Cross-engine agreement: every join-project engine in the workspace must
//! produce byte-identical results on every dataset family.
//!
//! This is the strongest correctness check the repository has: six
//! independently implemented 2-path engines (plus the MMJoin counting
//! variant and the star engines) all have to agree on non-trivial inputs
//! drawn from the same generators the experiments use.

use mmjoin_baseline::fulljoin::{HashJoinEngine, SortMergeEngine, SystemXEngine};
use mmjoin_baseline::nonmm::ExpandDedupEngine;
use mmjoin_baseline::setintersect::SetIntersectEngine;
use mmjoin_baseline::star::{HashDedupStarEngine, SortDedupStarEngine};
use mmjoin_baseline::{StarEngine, TwoPathEngine};
use mmjoin_core::{two_path_with_counts, HeavyBackend, JoinConfig, MmJoinEngine};
use mmjoin_datagen::DatasetKind;
use mmjoin_storage::{Relation, Value};

const SCALE: f64 = 0.04;
const SEED: u64 = 77;

fn engines() -> Vec<Box<dyn TwoPathEngine>> {
    vec![
        Box::new(MmJoinEngine::serial()),
        Box::new(MmJoinEngine::parallel(3)),
        Box::new(MmJoinEngine::new(JoinConfig {
            heavy_backend: HeavyBackend::BitMatrix,
            ..JoinConfig::default()
        })),
        Box::new(MmJoinEngine::new(JoinConfig {
            heavy_backend: HeavyBackend::Sparse,
            ..JoinConfig::default()
        })),
        Box::new(MmJoinEngine::new(JoinConfig {
            heavy_backend: HeavyBackend::Auto,
            ..JoinConfig::default()
        })),
        Box::new(ExpandDedupEngine::serial()),
        Box::new(ExpandDedupEngine::parallel(4)),
        Box::new(HashJoinEngine),
        Box::new(SortMergeEngine),
        Box::new(SetIntersectEngine),
        Box::new(SystemXEngine),
    ]
}

#[test]
fn two_path_engines_agree_on_all_datasets() {
    for kind in DatasetKind::ALL {
        let r = mmjoin_datagen::generate(kind, SCALE, SEED);
        let reference = SortMergeEngine.join_project(&r, &r);
        assert!(!reference.is_empty(), "{kind:?} produced empty output");
        for engine in engines() {
            assert_eq!(
                engine.join_project(&r, &r),
                reference,
                "{} disagrees on {kind:?}",
                engine.name()
            );
        }
    }
}

#[test]
fn two_path_engines_agree_on_cross_join() {
    // Non-self join: R and S from different families sharing a y domain.
    let r = mmjoin_datagen::generate(DatasetKind::Jokes, SCALE, SEED);
    let s = mmjoin_datagen::generate(DatasetKind::Jokes, SCALE, SEED + 1);
    let reference = SortMergeEngine.join_project(&r, &s);
    for engine in engines() {
        assert_eq!(
            engine.join_project(&r, &s),
            reference,
            "{} disagrees on cross join",
            engine.name()
        );
    }
}

#[test]
fn star_engines_agree_k3() {
    for kind in [DatasetKind::Dblp, DatasetKind::Jokes, DatasetKind::Protein] {
        let scale = if kind.is_dense() { 0.012 } else { 0.03 };
        let rels = mmjoin_datagen::generate_star(kind, scale, SEED, 3);
        let reference = SortDedupStarEngine.star_join_project(&rels);
        let candidates: Vec<Box<dyn StarEngine>> = vec![
            Box::new(MmJoinEngine::serial()),
            Box::new(MmJoinEngine::parallel(2)),
            Box::new(ExpandDedupEngine::serial()),
            Box::new(HashDedupStarEngine),
        ];
        for engine in candidates {
            assert_eq!(
                engine.star_join_project(&rels),
                reference,
                "{} disagrees on {kind:?} star",
                engine.name()
            );
        }
    }
}

#[test]
fn star_engines_agree_k4() {
    let rels = mmjoin_datagen::generate_star(DatasetKind::Protein, 0.008, SEED, 4);
    let reference = SortDedupStarEngine.star_join_project(&rels);
    let mm = MmJoinEngine::serial().star_join_project(&rels);
    assert_eq!(mm, reference, "k=4 star disagrees");
}

#[test]
fn counting_variant_counts_match_bruteforce_on_generated_data() {
    let r = mmjoin_datagen::generate(DatasetKind::Protein, 0.02, SEED);
    let counts = two_path_with_counts(&r, &r, 1, &JoinConfig::default());
    // Spot-check 200 entries against direct intersections.
    let step = (counts.len() / 200).max(1);
    for (x, z, c) in counts.iter().step_by(step) {
        let truth = mmjoin_storage::csr::intersect_count(r.ys_of(*x), r.ys_of(*z)) as u32;
        assert_eq!(truth, *c, "count mismatch for pair ({x},{z})");
    }
    // And the pair set must equal the plain join-project.
    let pairs: Vec<(Value, Value)> = counts.iter().map(|&(x, z, _)| (x, z)).collect();
    let reference = SortMergeEngine.join_project(&r, &r);
    assert_eq!(pairs, reference);
}

#[test]
fn reduce_pair_preserves_join_result() {
    let r = mmjoin_datagen::generate(DatasetKind::Words, 0.03, SEED);
    let s = mmjoin_datagen::generate(DatasetKind::Words, 0.03, SEED + 5);
    let before = SortMergeEngine.join_project(&r, &s);
    let (r2, s2) = Relation::reduce_pair(&r, &s);
    let after = SortMergeEngine.join_project(&r2, &s2);
    assert_eq!(before, after, "semi-join reduction changed the result");
    assert!(r2.len() <= r.len());
    assert!(s2.len() <= s.len());
}
