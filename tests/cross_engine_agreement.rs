//! Cross-engine agreement: every engine in the workspace registry must
//! produce byte-identical results on every dataset family.
//!
//! This is the strongest correctness check the repository has, and it is
//! fully registry-driven: the engines under test are whatever
//! [`mmjoin::default_registry`] says supports each query — registering a
//! new engine automatically puts it under this microscope, with no
//! per-engine hard-coding here.

use mmjoin::{default_registry, Engine, EngineRegistry, PairSink, Query, VecSink};
use mmjoin_core::{two_path_with_counts, HeavyBackend, JoinConfig, MmJoinEngine};
use mmjoin_datagen::DatasetKind;
use mmjoin_storage::{Relation, Value};

const SCALE: f64 = 0.04;
const SEED: u64 = 77;

/// The default roster plus extra MMJoin configurations (parallel, each
/// heavy-core backend) registered under distinct names — the registry
/// makes widening the sweep a one-liner.
fn registry_under_test() -> EngineRegistry {
    let mut registry = default_registry(1);
    struct Renamed {
        name: &'static str,
        inner: MmJoinEngine,
    }
    impl Engine for Renamed {
        fn name(&self) -> &str {
            self.name
        }
        fn supports(&self, q: &Query<'_>) -> bool {
            self.inner.supports(q)
        }
        fn execute(
            &self,
            q: &Query<'_>,
            sink: &mut dyn mmjoin::Sink,
        ) -> Result<mmjoin::ExecStats, mmjoin::EngineError> {
            self.inner.execute(q, sink)
        }
    }
    let backend_cfg = |backend| JoinConfig {
        heavy_backend: backend,
        ..JoinConfig::default()
    };
    let threads_cfg = |threads| JoinConfig {
        threads,
        ..JoinConfig::default()
    };
    for (name, config) in [
        // The executor-backed parallel paths at every budget the
        // acceptance sweep cares about (serial is the roster default).
        ("MMJoin(2 threads)", threads_cfg(2)),
        ("MMJoin(3 threads)", threads_cfg(3)),
        ("MMJoin(8 threads)", threads_cfg(8)),
        ("MMJoin(bitmatrix)", backend_cfg(HeavyBackend::BitMatrix)),
        ("MMJoin(spgemm)", backend_cfg(HeavyBackend::Sparse)),
        ("MMJoin(auto)", backend_cfg(HeavyBackend::Auto)),
    ] {
        registry.register(Box::new(Renamed {
            name,
            inner: MmJoinEngine::new(config),
        }));
    }
    registry
}

/// Executes `query` on every supporting engine and asserts the streamed
/// row sets are identical; returns the agreed rows.
fn assert_engines_agree(
    registry: &EngineRegistry,
    query: &Query<'_>,
    label: &str,
) -> Vec<Vec<Value>> {
    let engines = registry.engines_for(query);
    assert!(engines.len() >= 2, "{label}: roster too small");
    let mut reference: Option<(String, Vec<Vec<Value>>)> = None;
    for engine in engines {
        let mut sink = VecSink::new();
        let stats = engine
            .execute(query, &mut sink)
            .unwrap_or_else(|e| panic!("{label}: {} failed: {e}", engine.name()));
        assert_eq!(
            stats.rows,
            sink.rows.len() as u64,
            "{label}: {} misreported its row count",
            engine.name()
        );
        match &reference {
            None => reference = Some((engine.name().to_string(), sink.rows)),
            Some((ref_name, ref_rows)) => assert_eq!(
                &sink.rows,
                ref_rows,
                "{label}: {} disagrees with {ref_name}",
                engine.name()
            ),
        }
    }
    reference.expect("at least one engine ran").1
}

#[test]
fn two_path_engines_agree_on_all_datasets() {
    let registry = registry_under_test();
    for kind in DatasetKind::ALL {
        let r = mmjoin_datagen::generate(kind, SCALE, SEED);
        let q = Query::two_path(&r, &r).build().unwrap();
        let rows = assert_engines_agree(&registry, &q, &format!("{kind:?}"));
        assert!(!rows.is_empty(), "{kind:?} produced empty output");
    }
}

#[test]
fn two_path_engines_agree_on_cross_join() {
    // Non-self join: R and S from different families sharing a y domain.
    let registry = registry_under_test();
    let r = mmjoin_datagen::generate(DatasetKind::Jokes, SCALE, SEED);
    let s = mmjoin_datagen::generate(DatasetKind::Jokes, SCALE, SEED + 1);
    let q = Query::two_path(&r, &s).build().unwrap();
    assert_engines_agree(&registry, &q, "cross-join");
}

#[test]
fn star_engines_agree_k3() {
    let registry = registry_under_test();
    for kind in [DatasetKind::Dblp, DatasetKind::Jokes, DatasetKind::Protein] {
        let scale = if kind.is_dense() { 0.012 } else { 0.03 };
        let rels = mmjoin_datagen::generate_star(kind, scale, SEED, 3);
        let q = Query::star(&rels).build().unwrap();
        assert_engines_agree(&registry, &q, &format!("{kind:?} star"));
    }
}

#[test]
fn star_engines_agree_k4() {
    let registry = registry_under_test();
    let rels = mmjoin_datagen::generate_star(DatasetKind::Protein, 0.008, SEED, 4);
    let q = Query::star(&rels).build().unwrap();
    assert_engines_agree(&registry, &q, "k=4 star");
}

#[test]
fn similarity_engines_agree() {
    let registry = registry_under_test();
    let r = mmjoin_datagen::generate(DatasetKind::Jokes, 0.02, SEED);
    for c in [2u32, 4] {
        let q = Query::similarity(&r, c).build().unwrap();
        assert_engines_agree(&registry, &q, &format!("similarity c={c}"));
    }
}

#[test]
fn containment_engines_agree() {
    let registry = registry_under_test();
    let r = mmjoin_datagen::generate(DatasetKind::Protein, 0.02, SEED);
    let q = Query::containment(&r).build().unwrap();
    let rows = assert_engines_agree(&registry, &q, "containment");
    assert!(!rows.is_empty(), "dense data should contain subsets");
}

#[test]
fn counting_variant_counts_match_bruteforce_on_generated_data() {
    let r = mmjoin_datagen::generate(DatasetKind::Protein, 0.02, SEED);
    let counts = two_path_with_counts(&r, &r, 1, &JoinConfig::default());
    // Spot-check 200 entries against direct intersections.
    let step = (counts.len() / 200).max(1);
    for (x, z, c) in counts.iter().step_by(step) {
        let truth = mmjoin_storage::csr::intersect_count(r.ys_of(*x), r.ys_of(*z)) as u32;
        assert_eq!(truth, *c, "count mismatch for pair ({x},{z})");
    }
    // And the pair set must equal the plain join-project through the
    // registry's reference engine.
    let registry = registry_under_test();
    let q = Query::two_path(&r, &r).build().unwrap();
    let mut sink = PairSink::new();
    registry.execute("MergeJoin(MySQL)", &q, &mut sink).unwrap();
    let pairs: Vec<(Value, Value)> = counts.iter().map(|&(x, z, _)| (x, z)).collect();
    assert_eq!(pairs, sink.pairs);
}

#[test]
fn reduce_pair_preserves_join_result() {
    let registry = registry_under_test();
    let r = mmjoin_datagen::generate(DatasetKind::Words, 0.03, SEED);
    let s = mmjoin_datagen::generate(DatasetKind::Words, 0.03, SEED + 5);
    let run = |r: &Relation, s: &Relation| {
        let q = Query::two_path(r, s).build().unwrap();
        let mut sink = PairSink::new();
        registry.execute("MergeJoin(MySQL)", &q, &mut sink).unwrap();
        sink.pairs
    };
    let before = run(&r, &s);
    let (r2, s2) = Relation::reduce_pair(&r, &s);
    let after = run(&r2, &s2);
    assert_eq!(before, after, "semi-join reduction changed the result");
    assert!(r2.len() <= r.len());
    assert!(s2.len() <= s.len());
}
