//! Property tests for the incremental-maintenance path: across random
//! insert/delete interleavings, delta-maintained cached results must be
//! identical to recomputing from scratch over the final relation — same
//! rows, same witness counts — including the delete-below-support edge
//! case where removing the last witness of an output pair must remove
//! the pair itself.
//!
//! Maintained entries serve rows in canonical sorted order while a fresh
//! engine execution uses its own emission order, so rows are compared as
//! sorted sequences (the multiset-of-rows contract both sides promise).

use mmjoin::{
    MaintenancePolicy, Relation, RelationDelta, Request, Response, Service, ServiceConfig, Value,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

type Edge = (Value, Value);

fn maintaining_service() -> Service {
    Service::with_config(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
}

fn sorted_rows(response: &Response) -> Vec<Vec<Value>> {
    let mut rows = (*response.rows).clone();
    rows.sort();
    rows
}

fn sorted_counted_rows(response: &Response) -> Vec<(Vec<Value>, u32)> {
    let mut rows: Vec<(Vec<Value>, u32)> = response
        .rows
        .iter()
        .cloned()
        .zip(response.counts.iter().copied())
        .collect();
    rows.sort();
    rows
}

/// One staged op: `(x, y, kind)` with kind 0 = insert, 1 = delete.
type Op = (Value, Value, u32);

fn delta_of(batch: &[Op]) -> RelationDelta {
    let mut delta = RelationDelta::new();
    for &(x, y, kind) in batch {
        if kind == 0 {
            delta.insert(x, y);
        } else {
            delta.delete(x, y);
        }
    }
    delta
}

/// Independent model of one batch: `(base ∪ inserts) \ deletes` (deletes
/// win within a batch, matching `RelationDelta`'s documented semantics).
fn apply_to_model(model: &mut BTreeSet<Edge>, batch: &[Op]) {
    for &(x, y, kind) in batch {
        if kind == 0 {
            model.insert((x, y));
        }
    }
    for &(x, y, kind) in batch {
        if kind != 0 {
            model.remove(&(x, y));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The storage layer alone: applying random delta batches yields
    /// exactly the model set, independent of merge-vs-rebuild path.
    #[test]
    fn apply_delta_matches_set_model(
        base in prop::collection::vec((0u32..8, 0u32..6), 0..24),
        batches in prop::collection::vec(
            prop::collection::vec((0u32..10, 0u32..7, 0u32..2), 0..8),
            1..5,
        ),
    ) {
        let mut relation = Relation::from_edges(base.iter().copied());
        let mut model: BTreeSet<Edge> = base.into_iter().collect();
        for batch in &batches {
            relation = relation.apply_delta(&delta_of(batch));
            apply_to_model(&mut model, batch);
            let expected: Vec<Edge> = model.iter().copied().collect();
            prop_assert_eq!(relation.edges(), &expected[..]);
        }
    }

    /// The full service path: after every random batch, the maintained
    /// cached results (plain and counting two-path self joins) are
    /// identical to a from-scratch service over the final relation.
    #[test]
    fn maintained_results_equal_recompute(
        base in prop::collection::vec((0u32..8, 0u32..6), 1..24),
        batches in prop::collection::vec(
            prop::collection::vec((0u32..10, 0u32..7, 0u32..2), 1..8),
            1..4,
        ),
    ) {
        let service = maintaining_service();
        service.register("R", Relation::from_edges(base.iter().copied()));
        let plain = Request::two_path("R", "R");
        let counting = Request::two_path_counts("R", "R", 1);
        // Populate the cache so there is something to maintain.
        service.query(plain.clone()).unwrap();
        service.query(counting.clone()).unwrap();

        let mut model: BTreeSet<Edge> = base.into_iter().collect();
        for batch in &batches {
            service.apply_delta("R", &delta_of(batch)).unwrap();
            apply_to_model(&mut model, batch);

            // The catalog relation matches the model exactly.
            let expected: Vec<Edge> = model.iter().copied().collect();
            prop_assert_eq!(service.relation_edges("R").unwrap(), expected);

            // Cached (maintained or eagerly recomputed) answers equal a
            // cold service over the final state.
            let reference = maintaining_service();
            reference.register("R", Relation::from_edges(model.iter().copied()));
            let got_plain = service.query(plain.clone()).unwrap();
            let want_plain = reference.query(plain.clone()).unwrap();
            prop_assert!(got_plain.cached, "update must keep the entry warm");
            prop_assert_eq!(sorted_rows(&got_plain), sorted_rows(&want_plain));

            let got_counts = service.query(counting.clone()).unwrap();
            let want_counts = reference.query(counting.clone()).unwrap();
            prop_assert_eq!(
                sorted_counted_rows(&got_counts),
                sorted_counted_rows(&want_counts),
                "witness counts must survive maintenance"
            );
        }
    }

    /// The maintained service agrees with the invalidate-everything
    /// baseline (which always recomputes) query for query.
    #[test]
    fn maintain_and_invalidate_policies_agree(
        base in prop::collection::vec((0u32..6, 0u32..5), 1..16),
        batch in prop::collection::vec((0u32..8, 0u32..6, 0u32..2), 1..8),
    ) {
        let maintained = maintaining_service();
        let baseline = Service::with_config(ServiceConfig {
            workers: 1,
            maintenance: MaintenancePolicy::disabled(),
            ..ServiceConfig::default()
        });
        for service in [&maintained, &baseline] {
            service.register("R", Relation::from_edges(base.iter().copied()));
            service.query(Request::two_path("R", "R")).unwrap();
            service.apply_delta("R", &delta_of(&batch)).unwrap();
        }
        let a = maintained.query(Request::two_path("R", "R")).unwrap();
        let b = baseline.query(Request::two_path("R", "R")).unwrap();
        prop_assert_eq!(sorted_rows(&a), sorted_rows(&b));
    }
}

/// The delete-below-support edge case, pinned deterministically: an
/// output pair must survive exactly as long as it has a witness.
#[test]
fn delete_below_support_edge_case() {
    let service = maintaining_service();
    // Sets 0 and 1 share elements {0, 1}: pair (0,1) has support 2.
    service.register("R", Relation::from_edges([(0, 0), (0, 1), (1, 0), (1, 1)]));
    let request = Request::two_path_counts("R", "R", 1);
    service.query(request.clone()).unwrap();

    // Build the support structure (first touch recomputes), then delete
    // one witness: (0,1)/(1,0) drop to support 1 but survive.
    service.insert("R", [(2, 0)]).unwrap();
    let report = service.delete("R", [(1, 1)]).unwrap();
    assert_eq!(report.maintained, 1, "the counting entry is patched");
    let after_one = service.query(request.clone()).unwrap();
    assert!(after_one.maintained);
    let rows = sorted_counted_rows(&after_one);
    assert!(
        rows.contains(&(vec![0, 1], 1)),
        "support 2 → 1 keeps the pair: {rows:?}"
    );

    // Delete the last shared element: the pair's support hits zero and it
    // disappears, while each set keeps its self-pair.
    let report = service.delete("R", [(1, 0)]).unwrap();
    assert_eq!(report.maintained, 1);
    let after_two = service.query(request.clone()).unwrap();
    assert!(after_two.maintained);
    let rows = sorted_counted_rows(&after_two);
    assert!(
        !rows
            .iter()
            .any(|(row, _)| row == &vec![0, 1] || row == &vec![1, 0]),
        "support 0 must remove the pair: {rows:?}"
    );
    assert!(rows.contains(&(vec![0, 0], 2)), "{rows:?}");

    // Ground truth: set 1 is now empty; only sets 0 and 2 remain.
    let reference = maintaining_service();
    reference.register("R", Relation::from_edges([(0, 0), (0, 1), (2, 0)]));
    let expected = reference.query(request).unwrap();
    assert_eq!(
        sorted_counted_rows(&after_two),
        sorted_counted_rows(&expected)
    );
}
