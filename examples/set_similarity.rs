//! Entity matching via set-similarity join (the §1 "Set Similarity"
//! application) and containment screening.
//!
//! ```sh
//! cargo run --release -p mmjoin-integration --example set_similarity
//! ```
//!
//! Runs the three SSJ algorithm families on a dense document–token dataset,
//! prints the most similar pairs (ordered SSJ), and finishes with a
//! set-containment pass.

use mmjoin_datagen::DatasetKind;
use mmjoin_scj::{set_containment_join, ScjAlgorithm};
use mmjoin_ssj::{ordered_ssj, unordered_ssj, SizeAwarePPOpts, SsjAlgorithm};
use std::time::Instant;

fn main() {
    let r = mmjoin_datagen::generate(DatasetKind::Jokes, 0.12, 7);
    println!(
        "document-token table: {} tuples, {} documents",
        r.len(),
        r.active_x_count()
    );

    const C: u32 = 3; // minimum shared tokens
    for (name, algo) in [
        ("MMJoin", SsjAlgorithm::mmjoin(1)),
        (
            "SizeAware++",
            SsjAlgorithm::SizeAwarePP(SizeAwarePPOpts::all()),
        ),
        ("SizeAware", SsjAlgorithm::SizeAware),
    ] {
        let t0 = Instant::now();
        let pairs = unordered_ssj(&r, C, &algo, 1);
        println!("{name:<12} found {} similar pairs in {:?}", pairs.len(), t0.elapsed());
    }

    // Ordered enumeration: the matrix counts give the ranking for free.
    let ranked = ordered_ssj(&r, C, &SsjAlgorithm::mmjoin(1), 1);
    println!("top 5 most similar document pairs:");
    for p in ranked.iter().take(5) {
        println!("  docs {:>4} and {:>4}: {} shared tokens", p.a, p.b, p.overlap);
    }

    // Containment screening: which documents are subsumed by another?
    let t0 = Instant::now();
    let contained = set_containment_join(&r, &ScjAlgorithm::mmjoin(1), 1);
    println!(
        "containment pairs (subset ⊆ superset): {} in {:?}",
        contained.len(),
        t0.elapsed()
    );
}
