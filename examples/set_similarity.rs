//! Entity matching via set-similarity join (the §1 "Set Similarity"
//! application) and containment screening — both through the unified
//! Query/Engine front door.
//!
//! ```sh
//! cargo run --release -p mmjoin-integration --example set_similarity
//! ```
//!
//! Runs every registered similarity engine on a dense document–token
//! dataset, prints the most similar pairs (ordered SSJ), and finishes with
//! a set-containment pass.

use mmjoin::{default_registry, CountSink, Query, VecSink};
use mmjoin_datagen::DatasetKind;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = mmjoin_datagen::generate(DatasetKind::Jokes, 0.12, 7);
    println!(
        "document-token table: {} tuples, {} documents",
        r.len(),
        r.active_x_count()
    );

    const C: u32 = 3; // minimum shared tokens
    let registry = default_registry(1);
    let query = Query::similarity(&r, C).build()?;
    for engine in registry.engines_for(&query) {
        let t0 = Instant::now();
        let mut sink = CountSink::new();
        let stats = engine.execute(&query, &mut sink)?;
        println!(
            "{:<12} found {} similar pairs in {:?}",
            engine.name(),
            stats.rows,
            t0.elapsed()
        );
    }

    // Ordered enumeration: the matrix counts give the ranking for free.
    let query = Query::similarity(&r, C).ordered().build()?;
    let mut ranked = VecSink::new();
    registry.execute("MMJoin", &query, &mut ranked)?;
    println!("top 5 most similar document pairs:");
    for (row, overlap) in ranked.rows.iter().zip(&ranked.counts).take(5) {
        println!(
            "  docs {:>4} and {:>4}: {} shared tokens",
            row[0], row[1], overlap
        );
    }

    // Containment screening: which documents are subsumed by another?
    let query = Query::containment(&r).build()?;
    let t0 = Instant::now();
    let mut sink = CountSink::new();
    let stats = registry.execute("MMJoin", &query, &mut sink)?;
    println!(
        "containment pairs (subset ⊆ superset): {} in {:?}",
        stats.rows,
        t0.elapsed()
    );
    Ok(())
}
