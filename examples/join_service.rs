//! The service layer in one file: register relations once, fire mixed
//! workloads from several client threads, watch the cache and the
//! auto-selection planner do their jobs.
//!
//! ```sh
//! cargo run --release -p mmjoin-integration --example join_service
//! ```

use mmjoin::{Relation, Request, Service, ServiceError};

fn main() -> Result<(), ServiceError> {
    let service = Service::with_default_registry(4);

    // Register once: statistics (degree histograms, duplication mass) are
    // profiled here, not per query.
    service.register(
        "follows",
        Relation::from_edges([(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (3, 2)]),
    );
    service.register(
        "tags",
        Relation::from_edges([(0, 0), (0, 1), (1, 0), (1, 2), (2, 1), (2, 2)]),
    );

    // Four query families through one door. The planner picks the engine
    // per query from the cost estimate (combinatorial vs matrix path).
    let requests = vec![
        Request::two_path("follows", "follows"),
        Request::two_path_counts("follows", "tags", 1),
        Request::star(["follows", "tags", "follows"]),
        Request::similarity("tags", 2),
        Request::containment("tags"),
        Request::two_path("follows", "follows").limit(3), // early-terminated
    ];

    // Hammer the service from 4 client threads; repeats hit the cache.
    // lint:allow(thread-spawn): example client threads stand in for
    // external callers, not workspace compute.
    std::thread::scope(|scope| {
        for client in 0..4 {
            let service = &service;
            let requests = &requests;
            scope.spawn(move || {
                for (i, request) in requests.iter().enumerate() {
                    match service.query(request.clone()) {
                        Ok(r) => println!(
                            "client {client} q{i}: {} rows via {:<12} cached={}{}",
                            r.rows.len(),
                            r.stats.engine,
                            r.cached,
                            if r.truncated { " (limit hit)" } else { "" }
                        ),
                        Err(e) => println!("client {client} q{i}: error {e}"),
                    }
                }
            });
        }
    });

    // A catalog update bumps the relation's epoch: cached results over it
    // become unreachable, so the next query re-executes.
    service
        .update(
            "follows",
            Relation::from_edges([(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (3, 2), (4, 2)]),
        )
        .unwrap();
    let fresh = service.query(Request::two_path("follows", "follows"))?;
    println!(
        "after update: {} rows, cached={} (must be false)",
        fresh.rows.len(),
        fresh.cached
    );

    println!("service metrics: {}", service.metrics());
    Ok(())
}
