//! Quickstart: evaluate a join-project query with MMJoin.
//!
//! ```sh
//! cargo run --release -p mmjoin-integration --example quickstart
//! ```
//!
//! Builds a small social-network relation (Example 1 of the paper), asks
//! for all user pairs sharing at least one friend, and compares MMJoin
//! against the classic full-join-then-dedup plan.

use mmjoin_baseline::fulljoin::HashJoinEngine;
use mmjoin_baseline::TwoPathEngine;
use mmjoin_core::{JoinConfig, MmJoinEngine};
use mmjoin_storage::RelationBuilder;
use std::time::Instant;

fn main() {
    // A friendship graph with two tight communities (Example 1): users
    // 0..50 all know hubs 0..4; users 50..100 know hubs 5..9.
    let mut builder = RelationBuilder::new();
    for user in 0..100u32 {
        let hubs = if user < 50 { 0..5u32 } else { 5..10u32 };
        for hub in hubs {
            builder.push(user, hub);
        }
        // A couple of personal contacts to keep the graph irregular.
        builder.push(user, 10 + user % 37);
    }
    let friends = builder.build();
    println!(
        "relation: {} tuples, {} users, {} contacts",
        friends.len(),
        friends.active_x_count(),
        friends.active_y_count()
    );

    // "SELECT DISTINCT R1.x, R2.x FROM R R1, R R2 WHERE R1.y = R2.y"
    let engine = MmJoinEngine::new(JoinConfig::default());
    let t0 = Instant::now();
    let pairs = engine.join_project(&friends, &friends);
    let mm_time = t0.elapsed();

    let t0 = Instant::now();
    let baseline = HashJoinEngine.join_project(&friends, &friends);
    let hash_time = t0.elapsed();

    assert_eq!(pairs, baseline, "engines must agree");
    println!("pairs with a common friend: {}", pairs.len());
    println!("MMJoin:             {mm_time:?}");
    println!("hash join + dedup:  {hash_time:?}");

    // The counting variant reports how many friends each pair shares.
    let counted = mmjoin_core::two_path_with_counts(&friends, &friends, 2, &JoinConfig::default());
    let best = counted
        .iter()
        .filter(|&&(a, b, _)| a < b)
        .max_by_key(|&&(_, _, c)| c)
        .expect("non-empty");
    println!(
        "most-connected pair: users {} and {} share {} friends",
        best.0, best.1, best.2
    );
}
