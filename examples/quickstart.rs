//! Quickstart: the unified Query/Engine/Sink front door.
//!
//! ```sh
//! cargo run --release -p mmjoin-integration --example quickstart
//! ```
//!
//! Builds a small social-network relation (Example 1 of the paper), asks
//! for all user pairs sharing at least one friend, and runs the same
//! [`Query`] on every engine the registry knows — MMJoin plus the classic
//! full-join-then-dedup plans — then inspects MMJoin's execution plan.

use mmjoin::{default_registry, CountSink, PairSink, PlanKind, Query, RelationBuilder, VecSink};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A friendship graph with two tight communities (Example 1): users
    // 0..50 all know hubs 0..4; users 50..100 know hubs 5..9.
    let mut builder = RelationBuilder::new();
    for user in 0..100u32 {
        let hubs = if user < 50 { 0..5u32 } else { 5..10u32 };
        for hub in hubs {
            builder.push(user, hub);
        }
        // A couple of personal contacts to keep the graph irregular.
        builder.push(user, 10 + user % 37);
    }
    let friends = builder.build();
    println!(
        "relation: {} tuples, {} users, {} contacts",
        friends.len(),
        friends.active_x_count(),
        friends.active_y_count()
    );

    // "SELECT DISTINCT R1.x, R2.x FROM R R1, R R2 WHERE R1.y = R2.y"
    // as a Query value; every engine in the registry runs the same one.
    let registry = default_registry(1);
    let query = Query::two_path(&friends, &friends).build()?;
    println!("\nengines supporting the 2-path query:");
    let mut reference: Option<u64> = None;
    for engine in registry.engines_for(&query) {
        let mut sink = CountSink::new();
        let t0 = Instant::now();
        let stats = engine.execute(&query, &mut sink)?;
        println!(
            "  {:<26} {:>8} pairs in {:>10?}",
            engine.name(),
            stats.rows,
            t0.elapsed()
        );
        match reference {
            None => reference = Some(stats.rows),
            Some(r) => assert_eq!(r, stats.rows, "engines must agree"),
        }
    }

    // ExecStats expose what the optimizer decided.
    let mut sink = PairSink::new();
    let stats = registry.execute("MMJoin", &query, &mut sink)?;
    if let Some(plan) = stats.plan {
        match plan.kind {
            PlanKind::Wcoj => println!("\nMMJoin plan: WCOJ fallback (join is output-like)"),
            PlanKind::MatrixPartitioned => println!(
                "\nMMJoin plan: matrix-partitioned, Δ1={:?} Δ2={:?}, heavy core {:?}",
                plan.delta1, plan.delta2, plan.heavy_dims
            ),
        }
    }

    // The counting variant reports how many friends each pair shares —
    // same front door, one builder call more.
    let query = Query::two_path(&friends, &friends).min_count(2).build()?;
    let mut sink = VecSink::new();
    registry.execute("MMJoin", &query, &mut sink)?;
    let best = sink
        .rows
        .iter()
        .zip(&sink.counts)
        .filter(|(row, _)| row[0] < row[1])
        .max_by_key(|(_, &c)| c)
        .expect("non-empty");
    println!(
        "most-connected pair: users {} and {} share {} friends",
        best.0[0], best.0[1], best.1
    );
    Ok(())
}
