//! Graph analytics: extract a co-author graph from an author–paper table
//! (the §1 "Graph Analytics" application).
//!
//! ```sh
//! cargo run --release -p mmjoin-integration --example coauthor_graph
//! ```
//!
//! The DBLP-like relation `R(author, paper)` defines the implicit view
//! `V(a1, a2) = R(a1, p), R(a2, p)`. MMJoin materialises the view without
//! ever building the full (duplicate-heavy) join, and the counting variant
//! yields collaboration strengths for free.

use mmjoin_core::{two_path_join_project, two_path_with_counts, JoinConfig};
use mmjoin_datagen::DatasetKind;
use std::time::Instant;

fn main() {
    // A synthetic DBLP-shaped author–paper relation.
    let r = mmjoin_datagen::generate(DatasetKind::Dblp, 0.3, 42);
    println!(
        "author-paper table: {} tuples, {} authors, {} papers",
        r.len(),
        r.active_x_count(),
        r.active_y_count()
    );

    // Materialise the co-author view.
    let cfg = JoinConfig::default();
    let t0 = Instant::now();
    let coauthors = two_path_join_project(&r, &r, &cfg);
    println!(
        "co-author view: {} directed edges in {:?}",
        coauthors.len(),
        t0.elapsed()
    );

    // Collaboration strength = number of joint papers: the SGEMM counts.
    let t0 = Instant::now();
    let weighted = two_path_with_counts(&r, &r, 2, &cfg);
    let strong: Vec<_> = weighted.iter().filter(|&&(a, b, _)| a < b).collect();
    println!(
        "pairs with >= 2 joint papers: {} in {:?}",
        strong.len(),
        t0.elapsed()
    );

    // Simple analytics over the extracted graph: degree distribution.
    let mut degree = vec![0u32; r.x_domain()];
    for &(a, b) in &coauthors {
        if a != b {
            degree[a as usize] += 1;
            let _ = b;
        }
    }
    let max_deg = degree.iter().max().copied().unwrap_or(0);
    let isolated = r.active_x_count() - degree.iter().filter(|&&d| d > 0).count();
    println!("max co-author degree: {max_deg}; authors with no co-authors: {isolated}");
}
