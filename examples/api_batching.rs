//! Boolean set-intersection API with request batching (§3.3, Figure 6).
//!
//! ```sh
//! cargo run --release -p mmjoin-integration --example api_batching
//! ```
//!
//! Simulates an API answering "have authors a and b ever co-authored?"
//! requests arriving at a fixed rate, comparing batch sizes and strategies:
//! larger batches amortise the join work (fewer machines), at the price of
//! queueing delay.

use mmjoin_bsi::{random_workload, simulate_batching, BsiStrategy};
use mmjoin_datagen::DatasetKind;

fn main() {
    let r = mmjoin_datagen::generate(DatasetKind::Image, 0.2, 11);
    println!(
        "serving intersection queries over {} sets ({} tuples)",
        r.active_x_count(),
        r.len()
    );

    let workload = random_workload(&r, &r, 10_000, 5);
    const RATE: f64 = 50_000.0; // queries per second

    println!(
        "{:>6}  {:>14}  {:>14}  {:>11}  {:>11}",
        "batch", "MM delay", "Non-MM delay", "MM machines", "NM machines"
    );
    for batch in [125usize, 250, 500, 1000, 2000] {
        let mm = simulate_batching(&r, &r, &workload, batch, RATE, &BsiStrategy::mm(1));
        let nm = simulate_batching(&r, &r, &workload, batch, RATE, &BsiStrategy::NonMm);
        println!(
            "{:>6}  {:>12.2}ms  {:>12.2}ms  {:>11}  {:>11}",
            batch,
            mm.avg_delay_secs * 1e3,
            nm.avg_delay_secs * 1e3,
            mm.machines_needed,
            nm.machines_needed,
        );
    }
    println!(
        "(positive-rate sanity: {:.1}% of random pairs intersect)",
        simulate_batching(
            &r,
            &r,
            &workload[..1000],
            250,
            RATE,
            &BsiStrategy::PerRequest
        )
        .positive_rate
            * 100.0
    );
}
