//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro over `arg in
//! strategy` bindings, range and tuple strategies, `collection::vec` /
//! `collection::btree_set`, [`ProptestConfig::with_cases`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the case index; the run
//!   is deterministic (seeded from the test name), so re-running reproduces
//!   it exactly.
//! * **Deterministic by construction** — there is no `PROPTEST_CASES` /
//!   environment integration.

use std::ops::Range;

pub mod strategy {
    use super::TestRng;
    use std::ops::Range;

    /// A value generator. The macro calls [`Strategy::sample`] once per
    /// case per bound variable.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.below(self.clone())
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of `element` samples with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with *up to* `size` elements (duplicates
    /// collapse, matching upstream's behaviour of retrying bounded times).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Set of `element` samples; cardinality at most the drawn size.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.below(self.size.clone());
            (0..target).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test deterministic RNG handed to strategies.
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Seeds deterministically from the test's name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(h),
        }
    }

    /// Uniform integer draw from a half-open range (empty range yields the
    /// start, so `0..0` length strategies produce empty collections).
    pub fn below<T>(&mut self, range: Range<T>) -> T
    where
        Range<T>: rand::SampleRange<Output = T>,
        T: PartialOrd + Copy,
    {
        use rand::Rng as _;
        if range.start >= range.end {
            return range.start;
        }
        self.inner.gen_range(range)
    }
}

/// Run configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Strategies drawing from an explicit list (mirrors `proptest::sample`).
pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy choosing uniformly among pre-built options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice among `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(0..self.options.len())].clone()
        }
    }
}

/// `Option` strategies (mirrors `proptest::option`).
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy producing `None` ~25% of the time (upstream's default
    /// weight), `Some(inner)` otherwise.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option<T>` from an inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Minimal `Arbitrary` stand-in backing [`any`].
pub trait ArbitrarySample {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitrarySample for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.below(0u32..2) == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitrarySample for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // `below` is half-open, which would never produce MAX;
                // weight the boundary values in explicitly (upstream
                // proptest also biases toward edge cases).
                match rng.below(0u32..32) {
                    0 => <$t>::MAX,
                    1 => <$t>::MIN,
                    _ => rng.below(<$t>::MIN..<$t>::MAX),
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, i8, i16, i32);

/// Strategy over a type's full arbitrary domain (mirrors
/// `proptest::prelude::any`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the upstream entry point for type-driven strategies.
pub fn any<T: ArbitrarySample>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitrarySample> strategy::Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The common imports, mirroring `proptest::prelude::*` (including the
/// `prop` module alias upstream exposes for `prop::collection::vec`-style
/// paths).
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Property-test entry macro. Supports the upstream surface this workspace
/// uses: an optional `#![proptest_config(..)]` header and `#[test]` fns
/// whose parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

/// Skips the current case when its precondition fails (upstream rejects
/// and redraws; with fixed case counts a plain skip is equivalent here).
/// Only valid inside a `proptest!` body, where it continues the case loop.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// `assert!` under a name the upstream API exposes (no shrink machinery).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` under the upstream name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` under the upstream name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_strategy_respects_bounds(
            v in crate::collection::vec((0u32..10, 0u32..5), 1..20),
            k in 2usize..6,
        ) {
            prop_assert!(v.len() < 20 && !v.is_empty());
            prop_assert!((2..6).contains(&k));
            for &(a, b) in &v {
                prop_assert!(a < 10 && b < 5);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        for _ in 0..64 {
            assert_eq!(a.below(0u32..1000), b.below(0u32..1000));
        }
    }

    #[test]
    fn empty_size_range_allowed() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..5, 0..1);
        let mut rng = crate::TestRng::from_name("empty");
        assert!(s.sample(&mut rng).is_empty());
    }
}
