//! Offline drop-in subset of the `criterion` benchmarking crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of criterion its benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::default()` with the builder knobs,
//! benchmark groups with `bench_function` / `bench_with_input` /
//! `throughput`, and `Bencher::iter`.
//!
//! Measurement is deliberately simple — a warm-up pass, then
//! `sample_size` timed iterations (or until `measurement_time` elapses),
//! reporting min / mean over samples to stdout. No statistical analysis,
//! HTML reports, or baseline comparisons; those need the real crate.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, re-exported like upstream.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sampling budget; sampling stops early once it is exhausted.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (sample_size, warm_up, budget) =
            (self.sample_size, self.warm_up_time, self.measurement_time);
        run_one(&id.to_string(), sample_size, warm_up, budget, f);
        self
    }
}

/// Identifier combining a function name and a parameter, like upstream.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Declared throughput, accepted and echoed (no rate math in the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing the driver's settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput (recorded; not analysed).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let c = &*self.criterion;
        run_one(&label, c.sample_size, c.warm_up_time, c.measurement_time, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream flushes reports here; the shim prints as it
    /// goes).
    pub fn finish(self) {}
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Measures `f`, recording `sample_size` samples.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            std_black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std_black_box(f());
            self.samples.push(t0.elapsed());
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    warm_up: Duration,
    budget: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        warm_up_time: warm_up,
        measurement_time: budget,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label:<50} (no samples: closure never called iter)");
        return;
    }
    let n = bencher.samples.len() as u32;
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!("bench {label:<50} mean {mean:>12?}   min {min:>12?}   ({n} samples)");
}

/// Builds the group-runner function, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Builds `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20))
    }

    #[test]
    fn group_bench_runs_closure() {
        let mut c = tiny_config();
        let mut g = c.benchmark_group("shim");
        let mut calls = 0u32;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls >= 3, "warm-up + samples should run several times");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = tiny_config();
        let mut g = c.benchmark_group("shim");
        let data = vec![1u64, 2, 3];
        g.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
