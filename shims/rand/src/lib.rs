//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of `rand`'s API its generators and tests actually use:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], plus the
//! [`Rng`] methods `gen_range`, `gen_bool` and `gen`. The generator is
//! SplitMix64-fed xoshiro256++ — high-quality, deterministic, and *stable
//! across platforms*, which is all the experiment seeds require. It is NOT
//! the same stream as upstream `rand`'s `StdRng` (ChaCha12); datasets are
//! reproducible within this workspace, not against external tooling.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring the subset of `rand::Rng` the
/// workspace uses.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (half-open or inclusive; integer or
    /// float).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Sample from the standard distribution of `T` (floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// `u64` in `[0, span)` by widening multiply (Lemire reduction; the slight
/// bias at 2^64-scale spans is irrelevant for data generation).
#[inline]
fn below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty range");
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// `f64` in `[0, 1)` from the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator seeded through SplitMix64 — the workspace's
    /// deterministic standard RNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let run_a: Vec<u32> = (0..32).map(|_| a.gen_range(0u32..1 << 30)).collect();
        let run_c: Vec<u32> = (0..32).map(|_| c.gen_range(0u32..1 << 30)).collect();
        assert_ne!(run_a, run_c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}
